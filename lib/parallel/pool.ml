module Obs = Pqc_obs.Obs
module Rng = Pqc_util.Rng

type stats = {
  workers : int;
  recovered : int;
  hung : int;
  respawned : int;
  quarantined : int;
  abnormal_exits : int;
}

type injected_fault = Hang | Crash_pre | Crash_mid | Partial_write

(* The chaos harness (Pqc_core.Fault) installs its decision function
   here; the hook is consulted only inside forked children, so the
   sequential path and in-parent recovery are fault-free by construction
   (which is what makes fault-plan runs comparable bit-for-bit to the
   clean sequential run). *)
let fault_hook : (int -> injected_fault option) ref = ref (fun _ -> None)
let set_fault_hook h = fault_hook := h
let clear_fault_hook () = fault_hook := fun _ -> None

(* Warn once per distinct bad value, not once per call: grid searches
   call workers_from_env per batch and a thousand identical lines on
   stderr would bury the signal. *)
let warned_invalid : (string, unit) Hashtbl.t = Hashtbl.create 4

let workers_from_env ?(default = 1) () =
  match Sys.getenv_opt "PQC_WORKERS" with
  | None -> default
  | Some s when String.trim s = "" -> default
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None ->
       if not (Hashtbl.mem warned_invalid s) then begin
         Hashtbl.add warned_invalid s ();
         Printf.eprintf
           "partialqc: ignoring invalid PQC_WORKERS=%S (expected an integer \
            >= 1); using %d\n%!"
           s default
       end;
       Obs.count "pool.env.invalid";
       default)

let min_items_from_env ?(default = 4) () =
  match Sys.getenv_opt "PQC_PAR_MIN_ITEMS" with
  | None -> default
  | Some s when String.trim s = "" -> default
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None -> default)

let item_deadline_from_env () =
  match Sys.getenv_opt "PQC_ITEM_DEADLINE_S" with
  | None -> None
  | Some s ->
    (match float_of_string_opt (String.trim s) with
     | Some d when Float.is_finite d && d > 0.0 -> Some d
     | Some _ | None -> None)

let item_retries_from_env ?(default = 2) () =
  match Sys.getenv_opt "PQC_POOL_ITEM_RETRIES" with
  | None -> default
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None -> default)

let backoff_base_from_env ?(default = 0.02) () =
  match Sys.getenv_opt "PQC_POOL_BACKOFF_S" with
  | None -> default
  | Some s ->
    (match float_of_string_opt (String.trim s) with
     | Some b when Float.is_finite b && b > 0.0 -> b
     | Some _ | None -> default)

let item_span f x = Obs.Span.with_ ~name:"pool.item" (fun () -> f x)

let zero_stats w =
  { workers = w; recovered = 0; hung = 0; respawned = 0; quarantined = 0;
    abnormal_exits = 0 }

let sequential f items =
  (List.map (fun x -> (item_span f x, false)) items, zero_stats 1)

(* --- Child protocol ---

   One frame per line over the worker pipe:
     <idx>\t<payload>   a result for item idx (payload is codec output)
     H\t<idx>           heartbeat: the worker is starting item idx
     T\t<payload>       trace events recorded since the fork
     M\t<payload>       histogram registry snapshot
   Results and heartbeats are flushed eagerly so the parent's liveness
   view is current: a worker that goes silent past the item deadline
   while items are outstanding is presumed hung. *)

let child_loop ~encode ~f ~items ~wr ~indices wid =
  let oc = Unix.out_channel_of_descr wr in
  (* Events recorded before the fork belong to the parent; only ship
     what this child adds past this point.  The histogram registry is
     copy-on-write too: reset this child's copy so encode_all below
     ships exactly the observations made inside this worker (the parent
     still owns everything recorded before the fork).  The flight ring
     resets for the same reason: a worker dump must replay this worker's
     tail, not inherited parent history. *)
  let m = Obs.mark () in
  Obs.set_worker wid;
  Obs.Metrics.reset ();
  Obs.Flight.reset ();
  (try
     Obs.Span.with_ ~name:"pool.worker"
       ~attrs:[ ("worker", string_of_int wid) ]
       (fun () ->
         List.iter
           (fun i ->
             (* Claim the item before computing it, so a subsequent hang
                or crash is attributable to exactly this item. *)
             Printf.fprintf oc "H\t%d\n" i;
             flush oc;
             match !fault_hook i with
             | Some Hang ->
               (* A hung worker is silent, not dead: it holds its pipe
                  open and never frames again.  Only the parent's
                  deadline can end it. *)
               while true do
                 Unix.sleepf 3600.0
               done
             | Some Crash_pre -> Unix._exit 70
             | (Some (Crash_mid | Partial_write) | None) as fault ->
               (match encode (item_span f items.(i)) with
                | s ->
                  (* A payload with a newline would desynchronize the
                     line framing; drop it and let the parent recompute. *)
                  if not (String.contains s '\n') then begin
                    let line = Printf.sprintf "%d\t%s" i s in
                    match fault with
                    | Some Crash_mid ->
                      (* Torn frame: half a line, no newline, then die —
                         the parent must discard the fragment. *)
                      output_string oc
                        (String.sub line 0 ((String.length line + 1) / 2));
                      flush oc;
                      Unix._exit 71
                    | Some Partial_write ->
                      (* Short write that still terminates the line: a
                         framed-but-corrupt record the codec must
                         reject. *)
                      output_string oc
                        (String.sub line 0 ((String.length line + 1) / 2));
                      output_char oc '\n';
                      flush oc
                    | _ ->
                      output_string oc line;
                      output_char oc '\n';
                      flush oc
                  end
                | exception _ -> ()))
           indices);
     (* Trace frames ride the same pipe under a "T" pseudo-index that
        result parsing ignores, so untraced parents stay compatible;
        histogram registries travel likewise under "M". *)
     (match Obs.encode_since m with
      | "" -> ()
      | payload ->
        if not (String.contains payload '\n') then
          Printf.fprintf oc "T\t%s\n" payload);
     (match Obs.Metrics.encode_all () with
      | "" -> ()
      | payload ->
        if not (String.contains payload '\n') then
          Printf.fprintf oc "M\t%s\n" payload);
     flush oc
   with _ -> ());
  (try flush oc with _ -> ())

let parse_line ~decode ~n line =
  match String.index_opt line '\t' with
  | None -> None
  | Some t ->
    (match int_of_string_opt (String.sub line 0 t) with
     | Some i when i >= 0 && i < n ->
       let payload = String.sub line (t + 1) (String.length line - t - 1) in
       Option.map (fun v -> (i, v)) (decode payload)
     | Some _ | None -> None)

let framed c line =
  String.length line >= 2 && line.[0] = c && line.[1] = '\t'

let frame_payload line = String.sub line 2 (String.length line - 2)

let is_trace_line = framed 'T'
let is_metrics_line = framed 'M'
let is_heartbeat_line = framed 'H'

(* --- Parent-side supervision --- *)

type 'b worker = {
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  wid : int;
  mutable pending : int list;  (** Assigned items not yet delivered. *)
  mutable current : int;  (** Item claimed by the last heartbeat, -1 if none. *)
  mutable last_seen : float;
}

(* Reap one child, preferring WNOHANG polls so a child that is slow to
   transition never wedges shutdown behind a blocking wait; after the
   poll budget a blocking wait is safe (the child is dead or dying: we
   only reap after EOF or SIGKILL).  [None] when the child was already
   reaped elsewhere. *)
let reap_status pid =
  let rec poll n =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if n <= 0 then snd (Unix.waitpid [] pid)
      else begin
        Unix.sleepf 0.002;
        poll (n - 1)
      end
    | _, status -> status
  in
  match poll 100 with
  | status -> Some status
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None

let map ?workers ?min_items ?item_deadline_s ?item_retries ?item_label ~encode
    ~decode f items =
  let requested =
    match workers with Some w -> max 1 w | None -> workers_from_env ()
  in
  let min_items =
    match min_items with Some m -> max 1 m | None -> min_items_from_env ()
  in
  let deadline =
    match item_deadline_s with
    | Some d when Float.is_finite d && d > 0.0 -> Some d
    | Some _ -> None
    | None -> item_deadline_from_env ()
  in
  let retries =
    match item_retries with
    | Some k -> max 1 k
    | None -> item_retries_from_env ()
  in
  let n = List.length items in
  if requested <= 1 || n <= 1 || n < min_items then sequential f items
  else
    Obs.Span.with_ ~name:"pool.map"
      ~attrs:
        [ ("items", string_of_int n);
          ("workers", string_of_int (min requested n)) ]
      (fun () ->
        let items = Array.of_list items in
        (* Correlation label for item [i] — the run_id the supervising
           parent stamps on flight-recorder entries, so a dump names the
           request a killed worker was serving. *)
        let label i =
          match item_label with
          | Some l -> ( match l i with "" -> Printf.sprintf "item#%d" i | s -> s)
          | None -> Printf.sprintf "item#%d" i
        in
        let w = min requested n in
        let results = Array.make n None in
        let strikes = Array.make n 0 in
        let quarantined = Array.make n false in
        let hung = ref 0
        and respawned = ref 0
        and nquar = ref 0
        and abnormal = ref 0 in
        (* Deterministic backoff jitter: seeded per map call, so a chaos
           run's sleep pattern is reproducible. *)
        let rng = Rng.create 0x5eed1 in
        let backoff_base = backoff_base_from_env () in
        (* A runaway poison batch must converge: after the cap, anything
           still undelivered falls through to in-parent recovery. *)
        let respawn_cap = max 16 (4 * w) in
        let next_wid = ref w in
        let spawn indices wid =
          let r, wr = Unix.pipe () in
          match Unix.fork () with
          | 0 ->
            (* Child: compute the shard, stream results, and _exit without
               running at_exit handlers or flushing buffers inherited from
               the parent (which would duplicate its pending output). *)
            Unix.close r;
            child_loop ~encode ~f ~items ~wr ~indices wid;
            Unix._exit 0
          | pid ->
            Unix.close wr;
            { pid; fd = r; buf = Buffer.create 256; wid; pending = indices;
              current = -1; last_seen = Obs.Clock.now () }
        in
        (* Worker [j] of [w] owns items j, j+w, j+2w, ... — round-robin
           sharding balances shards even when item cost correlates with
           position (deep blocks cluster at the end of UCCSD ansatz
           partitions). *)
        let shard j =
          let rec go i acc = if i >= n then List.rev acc else go (i + w) (i :: acc) in
          go j []
        in
        let live = ref (List.init w (fun j -> spawn (shard j) (j + 1))) in
        let remove wk = live := List.filter (fun x -> x.pid <> wk.pid) !live in
        let process_line wk line =
          if is_trace_line line then Obs.absorb (frame_payload line)
          else if is_metrics_line line then
            Obs.Metrics.absorb (frame_payload line)
          else if is_heartbeat_line line then begin
            match int_of_string_opt (frame_payload line) with
            | Some i when i >= 0 && i < n ->
              wk.current <- i;
              (* The claim trail is what makes a later kill attributable:
                 the dump's tail shows which item (and which request) the
                 worker was on when it went silent. *)
              Obs.Flight.record ~kind:"pool.claim" ~run_id:(label i)
                (Printf.sprintf "worker %d (pid %d) claimed item %d" wk.wid
                   wk.pid i)
            | Some _ | None -> ()
          end
          else
            match parse_line ~decode ~n line with
            | Some (i, v) ->
              results.(i) <- Some v;
              wk.pending <- List.filter (fun j -> j <> i) wk.pending;
              if wk.current = i then wk.current <- -1
            | None -> ()
        in
        let split_lines wk =
          let s = Buffer.contents wk.buf in
          Buffer.clear wk.buf;
          let len = String.length s in
          let rec go start =
            if start >= len then ()
            else
              match String.index_from_opt s start '\n' with
              | Some e ->
                process_line wk (String.sub s start (e - start));
                go (e + 1)
              | None -> Buffer.add_substring wk.buf s start (len - start)
          in
          go 0
        in
        let chunk = Bytes.create 65536 in
        (* [true] on EOF. *)
        let read_once wk =
          match Unix.read wk.fd chunk 0 (Bytes.length chunk) with
          | 0 -> true
          | k ->
            Buffer.add_subbytes wk.buf chunk 0 k;
            wk.last_seen <- Obs.Clock.now ();
            split_lines wk;
            false
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
        in
        let drain_to_eof wk =
          (try
             while not (read_once wk) do
               ()
             done
           with Unix.Unix_error _ -> ());
          (try Unix.close wk.fd with Unix.Unix_error _ -> ())
        in
        (* Decide what a dead worker leaves behind.  A strike (abnormal
           death or hang) is charged to the item the worker had claimed;
           an item that collects [retries] strikes is poison — it has
           killed that many workers — and is quarantined to in-parent
           execution instead of being allowed to kill another.  The
           struck item is re-dispatched last so the shard's healthy
           items complete first on the respawn. *)
        let requeue wk ~strike =
          if strike && wk.current >= 0 && results.(wk.current) = None then begin
            let i = wk.current in
            strikes.(i) <- strikes.(i) + 1;
            if strikes.(i) >= retries && not quarantined.(i) then begin
              quarantined.(i) <- true;
              incr nquar;
              Obs.count "pool.quarantine";
              Obs.Flight.record ~kind:"pool.quarantine" ~run_id:(label i)
                (Printf.sprintf
                   "item %d quarantined after %d strikes (last worker %d, \
                    pid %d)"
                   i strikes.(i) wk.wid wk.pid);
              ignore (Obs.Flight.dump_auto ~reason:"pool.quarantine" ())
            end
          end;
          let undelivered =
            List.filter
              (fun i -> results.(i) = None && not quarantined.(i))
              wk.pending
          in
          if strike && wk.current >= 0 && List.mem wk.current undelivered then
            List.filter (fun i -> i <> wk.current) undelivered
            @ [ wk.current ]
          else undelivered
        in
        let maybe_respawn wk ~strike =
          match requeue wk ~strike with
          | [] -> ()
          | redispatch ->
            if strike && !respawned < respawn_cap then begin
              Obs.count "pool.respawn";
              let b =
                Float.min 0.5
                  (backoff_base
                  *. (2.0 ** float_of_int !respawned)
                  *. (0.5 +. Rng.float rng 1.0))
              in
              incr respawned;
              Obs.Metrics.observe "pool.respawn.backoff_s" b;
              Unix.sleepf b;
              incr next_wid;
              live := spawn redispatch !next_wid :: !live
            end
            (* No strike (a worker that exited 0 without delivering, e.g.
               an encode failure), or the respawn budget is spent: the
               items recover in-parent at fan-in, exactly as before. *)
        in
        let finalize wk ~killed =
          remove wk;
          let crashed =
            match reap_status wk.pid with
            | Some (Unix.WEXITED 0) | None -> false
            | Some (Unix.WEXITED _ | Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
              (* Deaths we caused (deadline SIGKILL) are accounted under
                 pool.worker.hung, not as abnormal exits. *)
              if not killed then begin
                incr abnormal;
                Obs.count "pool.worker.abnormal_exit";
                Obs.Flight.record ~kind:"pool.abnormal_exit"
                  ~run_id:(if wk.current >= 0 then label wk.current else "")
                  (Printf.sprintf
                     "reaped worker %d (pid %d) abnormal exit; last claimed \
                      item %d span pool.item"
                     wk.wid wk.pid wk.current);
                ignore (Obs.Flight.dump_auto ~reason:"pool.abnormal_exit" ())
              end;
              true
          in
          (* A worker that exited 0 with undelivered items (e.g. an encode
             failure) is not struck: re-dispatching would fail the same
             way, so those items recover in-parent instead. *)
          maybe_respawn wk ~strike:(killed || crashed)
        in
        while !live <> [] do
          let now = Obs.Clock.now () in
          let timeout =
            match deadline with
            | None -> -1.0
            | Some d ->
              let remaining =
                List.fold_left
                  (fun acc wk ->
                    if wk.pending = [] then acc
                    else Float.min acc (d -. (now -. wk.last_seen)))
                  d !live
              in
              Float.min 0.25 (Float.max 0.005 remaining)
          in
          let readable, _, _ =
            match Unix.select (List.map (fun wk -> wk.fd) !live) [] [] timeout with
            | r -> r
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
          in
          let eofs = ref [] in
          List.iter
            (fun wk ->
              if List.mem wk.fd readable then
                if read_once wk then eofs := wk :: !eofs)
            !live;
          List.iter
            (fun wk ->
              (try Unix.close wk.fd with Unix.Unix_error _ -> ());
              finalize wk ~killed:false)
            !eofs;
          (match deadline with
           | None -> ()
           | Some d ->
             let now = Obs.Clock.now () in
             List.iter
               (fun wk ->
                 if wk.pending <> [] && now -. wk.last_seen > d then begin
                   (* Hung: no frame for a full item deadline while items
                      are outstanding.  SIGKILL — a stuck optimizer does
                      not respond to gentler signals — then salvage
                      whatever it piped before stalling. *)
                   incr hung;
                   Obs.count "pool.worker.hung";
                   Obs.Flight.record ~kind:"pool.kill"
                     ~run_id:
                       (if wk.current >= 0 then label wk.current else "")
                     (Printf.sprintf
                        "SIGKILL worker %d (pid %d) hung on item %d span \
                         pool.item"
                        wk.wid wk.pid wk.current);
                   (try Unix.kill wk.pid Sys.sigkill
                    with Unix.Unix_error _ -> ());
                   drain_to_eof wk;
                   finalize wk ~killed:true;
                   ignore (Obs.Flight.dump_auto ~reason:"pool.kill" ())
                 end)
               !live)
        done;
        (* Fan-in recovery: anything a worker failed to deliver — death,
           corrupt record, encode failure, quarantine — is recomputed
           here.  Exceptions from [f] now surface in the parent, exactly
           as they would have sequentially. *)
        let recovered = ref 0 in
        let out =
          List.init n (fun i ->
              match results.(i) with
              | Some v -> (v, false)
              | None ->
                incr recovered;
                Obs.count "pool.recovered";
                ( Obs.Span.with_ ~name:"pool.recover" (fun () -> f items.(i)),
                  true ))
        in
        ( out,
          { workers = w; recovered = !recovered; hung = !hung;
            respawned = !respawned; quarantined = !nquar;
            abnormal_exits = !abnormal } ))
