module Obs = Pqc_obs.Obs

type stats = { workers : int; recovered : int }

(* Warn once per distinct bad value, not once per call: grid searches
   call workers_from_env per batch and a thousand identical lines on
   stderr would bury the signal. *)
let warned_invalid : (string, unit) Hashtbl.t = Hashtbl.create 4

let workers_from_env ?(default = 1) () =
  match Sys.getenv_opt "PQC_WORKERS" with
  | None -> default
  | Some s when String.trim s = "" -> default
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None ->
       if not (Hashtbl.mem warned_invalid s) then begin
         Hashtbl.add warned_invalid s ();
         Printf.eprintf
           "partialqc: ignoring invalid PQC_WORKERS=%S (expected an integer \
            >= 1); using %d\n%!"
           s default
       end;
       Obs.count "pool.env.invalid";
       default)

let min_items_from_env ?(default = 4) () =
  match Sys.getenv_opt "PQC_PAR_MIN_ITEMS" with
  | None -> default
  | Some s when String.trim s = "" -> default
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None -> default)

let item_span f x = Obs.Span.with_ ~name:"pool.item" (fun () -> f x)

let sequential f items =
  ( List.map (fun x -> (item_span f x, false)) items,
    { workers = 1; recovered = 0 } )

(* Worker [j] of [w] owns items j, j+w, j+2w, ... — round-robin sharding
   balances shards even when item cost correlates with position (deep
   blocks cluster at the end of UCCSD ansatz partitions). *)
let child_loop ~encode ~f ~items ~wr j w =
  let oc = Unix.out_channel_of_descr wr in
  let n = Array.length items in
  let i = ref j in
  (* Events recorded before the fork belong to the parent; only ship
     what this child adds past this point.  The histogram registry is
     copy-on-write too: reset this child's copy so encode_all below
     ships exactly the observations made inside this worker (the parent
     still owns everything recorded before the fork). *)
  let m = Obs.mark () in
  Obs.set_worker (j + 1);
  Obs.Metrics.reset ();
  (try
     Obs.Span.with_ ~name:"pool.worker"
       ~attrs:[ ("worker", string_of_int (j + 1)) ]
       (fun () ->
         while !i < n do
           (match encode (item_span f items.(!i)) with
            | s ->
              (* A payload with a newline would desynchronize the line
                 framing; drop it and let the parent recompute. *)
              if not (String.contains s '\n') then
                Printf.fprintf oc "%d\t%s\n" !i s
            | exception _ -> ());
           i := !i + w
         done);
     (* Trace frames ride the same pipe under a "T" pseudo-index that
        parse_line already ignores, so untraced parents stay compatible;
        histogram registries travel likewise under "M". *)
     (match Obs.encode_since m with
      | "" -> ()
      | payload ->
        if not (String.contains payload '\n') then
          Printf.fprintf oc "T\t%s\n" payload);
     (match Obs.Metrics.encode_all () with
      | "" -> ()
      | payload ->
        if not (String.contains payload '\n') then
          Printf.fprintf oc "M\t%s\n" payload);
     flush oc
   with _ -> ());
  (try flush oc with _ -> ())

let parse_line ~decode ~n line =
  match String.index_opt line '\t' with
  | None -> None
  | Some t ->
    (match int_of_string_opt (String.sub line 0 t) with
     | Some i when i >= 0 && i < n ->
       let payload = String.sub line (t + 1) (String.length line - t - 1) in
       Option.map (fun v -> (i, v)) (decode payload)
     | Some _ | None -> None)

let is_trace_line line =
  String.length line >= 2 && line.[0] = 'T' && line.[1] = '\t'

let is_metrics_line line =
  String.length line >= 2 && line.[0] = 'M' && line.[1] = '\t'

let map ?workers ?min_items ~encode ~decode f items =
  let requested =
    match workers with Some w -> max 1 w | None -> workers_from_env ()
  in
  let min_items =
    match min_items with Some m -> max 1 m | None -> min_items_from_env ()
  in
  let n = List.length items in
  if requested <= 1 || n <= 1 || n < min_items then sequential f items
  else
    Obs.Span.with_ ~name:"pool.map"
      ~attrs:
        [ ("items", string_of_int n);
          ("workers", string_of_int (min requested n)) ]
      (fun () ->
        let items = Array.of_list items in
        let w = min requested n in
        let results = Array.make n None in
        let spawn j =
          let r, wr = Unix.pipe () in
          match Unix.fork () with
          | 0 ->
            (* Child: compute the shard, stream results, and _exit without
               running at_exit handlers or flushing buffers inherited from
               the parent (which would duplicate its pending output). *)
            Unix.close r;
            child_loop ~encode ~f ~items ~wr j w;
            Unix._exit 0
          | pid ->
            Unix.close wr;
            (pid, r)
        in
        let children = Array.init w spawn in
        (* Drain pipes one worker at a time: the parent only reads, so a
           worker blocked on a full pipe simply waits for its turn — no
           deadlock, and no need for select-based multiplexing. *)
        Array.iter
          (fun (pid, r) ->
            let ic = Unix.in_channel_of_descr r in
            (try
               while true do
                 let line = input_line ic in
                 if is_trace_line line then
                   Obs.absorb
                     (String.sub line 2 (String.length line - 2))
                 else if is_metrics_line line then
                   Obs.Metrics.absorb
                     (String.sub line 2 (String.length line - 2))
                 else
                   match parse_line ~decode ~n line with
                   | Some (i, v) -> results.(i) <- Some v
                   | None -> ()
               done
             with End_of_file | Sys_error _ -> ());
            close_in_noerr ic;
            (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()))
          children;
        (* Fan-in recovery: anything a worker failed to deliver — death,
           corrupt record, encode failure — is recomputed here.  Exceptions
           from [f] now surface in the parent, exactly as they would have
           sequentially. *)
        let recovered = ref 0 in
        let out =
          List.init n (fun i ->
              match results.(i) with
              | Some v -> (v, false)
              | None ->
                incr recovered;
                Obs.count "pool.recovered";
                ( Obs.Span.with_ ~name:"pool.recover" (fun () -> f items.(i)),
                  true ))
        in
        (out, { workers = w; recovered = !recovered }))
