(** Supervised fork-based worker pool for batch compilation.

    GRAPE block searches are CPU-bound, independent, and embarrassingly
    parallel; this module fans a batch of them out over [Unix.fork]
    workers and reassembles the results {e in input order}, so callers
    observe the same result list regardless of how the batch was sharded
    or in which order workers finished.

    The design is crash-only {e and} hang-aware.  Workers ship each
    result as one framed line over a pipe as soon as it is computed, and
    heartbeat before starting each item, so the parent always knows
    which item a worker is on.  The parent multiplexes every worker pipe
    through [select]:

    - A worker that {e dies} mid-shard (segfault, OOM kill, nonzero
      exit) truncates its stream; the parent reaps it (WNOHANG loop,
      abnormal exits counted), charges a {e strike} to the item it had
      claimed, and re-dispatches its undelivered items to a respawned
      worker after a seeded exponential backoff.
    - A worker that {e hangs} — no frame for a full item deadline while
      items are outstanding — is SIGKILLed and handled the same way.
      Hang detection requires a deadline ([PQC_ITEM_DEADLINE_S] or
      [?item_deadline_s]); without one the parent waits indefinitely,
      as a deadline short enough to kill a healthy GRAPE run would be
      worse than no supervision.
    - An item that collects [item_retries] strikes is {e poison}: it is
      quarantined instead of being allowed to kill another worker, and
      is executed in-parent at fan-in (where the engine's own
      retry/degradation chain applies).  Respawns are capped
      ([max 16 (4*workers)] per map) so a pathological batch always
      converges to the in-parent path.

    After the fan-in the parent recomputes every item still missing —
    lost, corrupt, quarantined, or over the respawn budget — so faults
    can slow a batch down but can never lose it, corrupt it, or change
    its results relative to the sequential run.

    Payload integrity is the codec's concern: [decode] should reject
    truncated or bit-flipped payloads (the engine's codec reuses the
    checksummed {!Pqc_core.Pulse_cache} record format), and any payload
    [decode] rejects is treated exactly like a lost worker.

    When tracing is enabled ({!Pqc_obs.Obs}), each [map] records a
    [pool.map] span, per-item [pool.item] spans, and — in forked
    children — a [pool.worker] span per worker.  Child events travel
    back over the same pipe on a dedicated ["T"]-indexed frame and are
    reassembled in the parent with their original parent-span ids, so a
    trace shows which worker ran which block.  Histogram registries
    ({!Pqc_obs.Obs.Metrics}) travel the same way on an ["M"] frame.
    Supervision events surface as [pool.worker.hung], [pool.respawn],
    [pool.quarantine] and [pool.worker.abnormal_exit] counters plus a
    [pool.respawn.backoff_s] histogram.  Trace and metrics frames never
    touch result payloads and tracing never changes results. *)

type stats = {
  workers : int;  (** Workers actually forked (1 = ran sequentially). *)
  recovered : int;
      (** Items whose worker result was missing, corrupt, or quarantined
          and which were recomputed in-process by the parent. *)
  hung : int;  (** Workers SIGKILLed for exceeding the item deadline. *)
  respawned : int;  (** Replacement workers forked after a strike. *)
  quarantined : int;
      (** Poison items withheld from re-dispatch after [item_retries]
          worker deaths, executed in-parent instead. *)
  abnormal_exits : int;
      (** Workers that exited nonzero or on a signal the parent did not
          send (deadline SIGKILLs are counted under [hung] instead). *)
}

type injected_fault = Hang | Crash_pre | Crash_mid | Partial_write
(** Faults the chaos harness can inject at the child seams: sleep
    forever after claiming an item; die before computing it; die halfway
    through writing its result frame; or write a framed-but-truncated
    record and carry on. *)

val set_fault_hook : (int -> injected_fault option) -> unit
(** Install the chaos decision function.  It is consulted {e only in
    forked children}, once per item (keyed by the item's batch index),
    so sequential runs and in-parent recovery are never faulted — which
    is what makes fault-plan runs bit-comparable to clean sequential
    runs.  Used by {!Pqc_core.Fault}; tests may install their own. *)

val clear_fault_hook : unit -> unit

val workers_from_env : ?default:int -> unit -> int
(** Worker count from the [PQC_WORKERS] environment variable ([default]
    — itself defaulting to 1 — when unset, empty, or invalid).  The
    accepted range is integers >= 1; 1 means fully sequential (no
    processes are forked anywhere).  An invalid value ([0], [-3],
    ["four"], ...) falls back to [default] with a one-line stderr
    warning (once per distinct value) and a [pool.env.invalid] trace
    counter; an unset or empty variable falls back silently. *)

val min_items_from_env : ?default:int -> unit -> int
(** Batch-size floor from the [PQC_PAR_MIN_ITEMS] environment variable
    ([default] — itself defaulting to 4 — when unset or invalid;
    accepted range: integers >= 1).  Batches smaller than the floor run
    sequentially in-process: for tiny batches the fork/pipe overhead
    exceeds the compute being sharded. *)

val item_deadline_from_env : unit -> float option
(** Per-item wall-clock deadline in seconds from [PQC_ITEM_DEADLINE_S]
    (finite, > 0; anything else reads as [None] — no hang detection). *)

val item_retries_from_env : ?default:int -> unit -> int
(** Strikes before quarantine from [PQC_POOL_ITEM_RETRIES] ([default]
    — itself defaulting to 2 — when unset or invalid; integers >= 1). *)

val backoff_base_from_env : ?default:float -> unit -> float
(** Respawn backoff base in seconds from [PQC_POOL_BACKOFF_S] ([default]
    — itself defaulting to 0.02 — when unset or invalid; finite > 0).
    Respawn [k] sleeps [base * 2^k * jitter], capped at 0.5 s, with
    jitter drawn from a seeded {!Pqc_util.Rng} (deterministic per map). *)

val map :
  ?workers:int ->
  ?min_items:int ->
  ?item_deadline_s:float ->
  ?item_retries:int ->
  ?item_label:(int -> string) ->
  encode:('b -> string) ->
  decode:(string -> 'b option) ->
  ('a -> 'b) ->
  'a list ->
  ('b * bool) list * stats
(** [map ~workers ~encode ~decode f items] computes [f] over [items] on
    [workers] forked processes (round-robin sharding) and returns the
    results in input order, each flagged [true] when it had to be
    recovered by recomputing in the parent.  [workers] defaults to
    {!workers_from_env}; [min_items] defaults to {!min_items_from_env};
    [item_deadline_s] defaults to {!item_deadline_from_env} (values
    <= 0 disable the deadline); [item_retries] defaults to
    {!item_retries_from_env}.  With [workers <= 1], fewer than two
    items, or fewer than [min_items] items the whole batch runs
    sequentially in-process ([f x, false] per item, no fork — exactly
    the pre-pool behaviour).

    [encode] must produce a single line (no newline); a payload that
    fails to encode, decode, or checksum is recomputed in the parent
    rather than trusted.  [f] runs in the forked children {e and} in the
    parent for recovered items, so it must be safe to call in both.

    [item_label] maps an item's batch index to its correlation run_id
    for the parent's flight-recorder trail ({!Pqc_obs.Obs.Flight}): the
    parent records a [pool.claim] entry per heartbeat and, on a kill,
    quarantine or abnormal reap, a matching entry naming the worker, its
    pid and the labelled item — then dumps the ring when
    [PQC_FLIGHT_DIR] is configured.  Defaults to ["item#<i>"]. *)
