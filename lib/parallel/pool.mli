(** Fork-based worker pool for batch compilation.

    GRAPE block searches are CPU-bound, independent, and embarrassingly
    parallel; this module fans a batch of them out over [Unix.fork]
    workers and reassembles the results {e in input order}, so callers
    observe the same result list regardless of how the batch was sharded
    or in which order workers finished.

    The design is deliberately crash-only: workers ship each result as
    one framed line over a pipe as soon as it is computed, and a worker
    that dies mid-shard (segfault, OOM kill, deadline SIGKILL) simply
    truncates its stream.  The parent recomputes every missing item
    in-process after the fan-in, so a lost worker can slow a batch down
    but can never lose it or corrupt it.

    Payload integrity is the codec's concern: [decode] should reject
    truncated or bit-flipped payloads (the engine's codec reuses the
    checksummed {!Pqc_core.Pulse_cache} record format), and any payload
    [decode] rejects is treated exactly like a lost worker.

    When tracing is enabled ({!Pqc_obs.Obs}), each [map] records a
    [pool.map] span, per-item [pool.item] spans, and — in forked
    children — a [pool.worker] span per worker.  Child events travel
    back over the same pipe on a dedicated ["T"]-indexed frame and are
    reassembled in the parent with their original parent-span ids, so a
    trace shows which worker ran which block.  Histogram registries
    ({!Pqc_obs.Obs.Metrics}) travel the same way on an ["M"] frame:
    each child resets its copy-on-write registry at fork and ships its
    own observations back, which the parent merges additively — so
    metrics recorded across any worker count are equivalent to the
    sequential run.  Trace and metrics frames never touch result
    payloads and tracing never changes results. *)

type stats = {
  workers : int;  (** Workers actually forked (1 = ran sequentially). *)
  recovered : int;
      (** Items whose worker result was missing or corrupt and which were
          recomputed in-process by the parent. *)
}

val workers_from_env : ?default:int -> unit -> int
(** Worker count from the [PQC_WORKERS] environment variable ([default]
    — itself defaulting to 1 — when unset, empty, or invalid).  The
    accepted range is integers >= 1; 1 means fully sequential (no
    processes are forked anywhere).  An invalid value ([0], [-3],
    ["four"], ...) falls back to [default] with a one-line stderr
    warning (once per distinct value) and a [pool.env.invalid] trace
    counter; an unset or empty variable falls back silently. *)

val min_items_from_env : ?default:int -> unit -> int
(** Batch-size floor from the [PQC_PAR_MIN_ITEMS] environment variable
    ([default] — itself defaulting to 4 — when unset or invalid;
    accepted range: integers >= 1).  Batches smaller than the floor run
    sequentially in-process: for tiny batches the fork/pipe overhead
    exceeds the compute being sharded. *)

val map :
  ?workers:int ->
  ?min_items:int ->
  encode:('b -> string) ->
  decode:(string -> 'b option) ->
  ('a -> 'b) ->
  'a list ->
  ('b * bool) list * stats
(** [map ~workers ~encode ~decode f items] computes [f] over [items] on
    [workers] forked processes (round-robin sharding) and returns the
    results in input order, each flagged [true] when it had to be
    recovered by recomputing in the parent.  [workers] defaults to
    {!workers_from_env}; [min_items] defaults to {!min_items_from_env}.
    With [workers <= 1], fewer than two items, or fewer than [min_items]
    items the whole batch runs sequentially in-process ([f x, false] per
    item, no fork — exactly the pre-pool behaviour).

    [encode] must produce a single line (no newline); a payload that
    fails to encode, decode, or checksum is recomputed in the parent
    rather than trusted.  [f] runs in the forked children {e and} in the
    parent for recovered items, so it must be safe to call in both. *)
