(** Compilation telemetry: timed spans, monotonic counters, gauges, and
    per-GRAPE-run convergence profiles, exported as Chrome trace-event
    JSON plus a text summary table.

    The layer is {e disabled by default} and every instrumentation point
    is a no-op until {!enable} is called (or the [PQC_TRACE] environment
    variable is set, see below).  Tracing never changes compilation
    results: trace records carry timestamps, but pulse outputs are
    bit-for-bit identical with tracing on or off, and trace data is
    excluded from pulse-cache keys, checksums and the worker-pool result
    protocol (trace records travel on their own frames).

    State is global to the process.  Forked worker-pool children inherit
    the enabled flag and the open span stack, record into their own
    (copy-on-write) buffer, and ship their events back to the parent over
    the pool pipe ({!encode_since}/{!absorb}); inherited span ids stay
    valid, so reassembled child spans keep their correct parents.

    [PQC_TRACE] semantics: unset/empty/["0"] — disabled; ["1"], ["true"]
    or ["summary"] — enabled, text summary printed to stderr at exit;
    any other value — enabled, treated as a path and the Chrome trace
    JSON is written there at exit. *)

type attr = string * string
(** Span attribute: key and pre-rendered value. *)

type point = {
  iteration : int;
  infidelity : float;  (** [1 - fidelity] at that iteration. *)
  learning_rate : float;  (** Decayed ADAM learning rate in effect. *)
  grad_norm : float;  (** L2 norm of the flattened gradient. *)
}
(** One snapshot of a GRAPE optimization trajectory. *)

type event =
  | Span of {
      id : int;
      parent : int;  (** Enclosing span id; 0 at top level. *)
      name : string;
      attrs : attr list;
      ts : float;  (** Seconds since the trace epoch. *)
      dur : float;  (** Seconds. *)
      tid : int;  (** 0 in the parent; worker index + 1 in pool children. *)
    }
  | Count of { name : string; by : float; ts : float; tid : int }
      (** One increment of a monotonic counter (totals are accumulated at
          export time, so child increments merge additively). *)
  | Gauge of { name : string; value : float; ts : float; tid : int }
  | Profile of { label : string; points : point list; ts : float; tid : int }

(** {2 Lifecycle} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded events and counters and restart the trace epoch. *)

(** {2 Recording} *)

module Span : sig
  val with_ : name:string -> ?attrs:attr list -> (unit -> 'a) -> 'a
  (** [with_ ~name ~attrs f] runs [f] inside a timed span.  When tracing
      is disabled this is just [f ()].  An exception closes the span
      (with an ["error"] attribute) and re-raises. *)
end

val count : ?by:float -> string -> unit
(** Increment a monotonic counter (default [by] 1.0). *)

val gauge : string -> float -> unit

val profile : label:string -> point list -> unit
(** Attach one GRAPE convergence profile to the trace. *)

(** {2 Introspection} *)

val events : unit -> event list
(** Recorded events in emission order (spans appear when they close, so
    children precede their parents). *)

val counter_value : string -> float
(** Current total of a counter (0 if never incremented). *)

val rollup : unit -> (string * int * float) list
(** Per-span-name [(name, count, total seconds)], sorted by name — the
    shape embedded in the bench JSON under ["trace"]. *)

(** {2 Export} *)

val to_chrome_json : ?normalize:bool -> unit -> string
(** Chrome trace-event JSON ([chrome://tracing] / Perfetto), fields in
    deterministic order.  [normalize] replaces every timestamp with the
    event's emission index and every duration with 1 — used by the
    golden-fixture test so the document is bit-stable. *)

val write : ?normalize:bool -> path:string -> unit -> unit
(** Atomically write {!to_chrome_json} to [path]. *)

val summary : unit -> string
(** Rendered {!Pqc_util.Table}: span counts and total milliseconds,
    counter totals, last gauge values. *)

(** {2 Worker-pool plumbing} *)

val mark : unit -> int
(** Current event count; pass to {!encode_since} to serialize only the
    events recorded after this point (e.g. since a fork). *)

val set_worker : int -> unit
(** Tag this process as pool worker [w] (1-based): subsequent events get
    [tid = w] and span ids move to a disjoint namespace so they cannot
    collide with the parent's or a sibling's. *)

val encode_since : int -> string
(** Single-line (newline-free) serialization of the events recorded
    after the given {!mark}; [""] when there are none or tracing is
    disabled. *)

val absorb : string -> unit
(** Append events serialized by {!encode_since} in another process to
    this process's buffer (and fold their counter increments into the
    totals).  Undecodable records are dropped — trace data is
    best-effort by design. *)
