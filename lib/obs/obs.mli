(** Compilation telemetry: timed spans, monotonic counters, gauges, and
    per-GRAPE-run convergence profiles, exported as Chrome trace-event
    JSON plus a text summary table.

    The layer is {e disabled by default} and every instrumentation point
    is a no-op until {!enable} is called (or the [PQC_TRACE] environment
    variable is set, see below).  Tracing never changes compilation
    results: trace records carry timestamps, but pulse outputs are
    bit-for-bit identical with tracing on or off, and trace data is
    excluded from pulse-cache keys, checksums and the worker-pool result
    protocol (trace records travel on their own frames).

    State is global to the process.  Forked worker-pool children inherit
    the enabled flag and the open span stack, record into their own
    (copy-on-write) buffer, and ship their events back to the parent over
    the pool pipe ({!encode_since}/{!absorb}); inherited span ids stay
    valid, so reassembled child spans keep their correct parents.

    [PQC_TRACE] semantics: unset/empty/["0"] — disabled; ["1"], ["true"]
    or ["summary"] — enabled, text summary printed to stderr at exit;
    any other value — enabled, treated as a path and the Chrome trace
    JSON is written there at exit. *)

type attr = string * string
(** Span attribute: key and pre-rendered value. *)

type point = {
  iteration : int;
  infidelity : float;  (** [1 - fidelity] at that iteration. *)
  learning_rate : float;  (** Decayed ADAM learning rate in effect. *)
  grad_norm : float;  (** L2 norm of the flattened gradient. *)
}
(** One snapshot of a GRAPE optimization trajectory. *)

type event =
  | Span of {
      id : int;
      parent : int;  (** Enclosing span id; 0 at top level. *)
      name : string;
      attrs : attr list;
      ts : float;  (** Seconds since the trace epoch. *)
      dur : float;  (** Seconds. *)
      tid : int;  (** 0 in the parent; worker index + 1 in pool children. *)
    }
  | Count of { name : string; by : float; ts : float; tid : int }
      (** One increment of a monotonic counter (totals are accumulated at
          export time, so child increments merge additively). *)
  | Gauge of { name : string; value : float; ts : float; tid : int }
  | Profile of { label : string; points : point list; ts : float; tid : int }

(** {2 Wall clock}

    Single indirection over [Unix.gettimeofday].  Every span timestamp,
    deadline check and bench timer in the tree reads the wall clock
    through {!Clock.now}, so a future monotonic-clock swap (or a fake
    clock in a test) is one line, not a sweep. *)

module Clock : sig
  val now : unit -> float
  (** Current wall-clock seconds via the installed hook (default
      [Unix.gettimeofday]). *)

  val set : (unit -> float) -> unit
  (** Install a clock hook (tests only). *)

  val reset : unit -> unit
  (** Restore the default wall clock. *)
end

(** {2 Correlation contexts}

    A [run_id] names one compile request; batch items derive
    ["<run_id>#<idx>"] sub-ids from it.  Ids are minted in the parent
    process from a deterministic counter plus a label hash, so the id
    stream is a pure function of the request sequence — workers:1 and
    workers:N runs mint identical ids.  The ambient context is what
    spans, pulse-cache entries, run-log lines and degradation records
    stamp themselves with at creation time. *)

module Ctx : sig
  val mint : string -> string
  (** [mint label] returns a fresh deterministic id
      ["r<counter>-<fnv1a(label)>"].  The counter restarts on
      {!Obs.reset}. *)

  val derive : string -> int -> string
  (** [derive rid idx] is ["<rid>#<idx>"] — the per-batch-item sub-id. *)

  val current : unit -> string option
  (** Ambient context, [None] outside any request. *)

  val set : string option -> unit

  val with_ctx : string option -> (unit -> 'a) -> 'a
  (** Run with the ambient context swapped, restoring on exit (also on
      exceptions). *)
end

(** {2 Lifecycle} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val set_trace_sample : float -> unit
(** Keep roughly this fraction of span/profile events, as a
    deterministic stride (rate [r] keeps 1 of every [round(1/r)]
    pushes).  Rates outside [(0, 1)] restore keep-everything.  Counters,
    gauges and the {!Metrics} registry are never sampled, so metric
    totals stay exact at any rate.  Also set by the [PQC_TRACE_SAMPLE]
    environment variable at load time. *)

val overhead_seconds : unit -> float
(** Cumulative seconds the tracing layer has spent on its own
    bookkeeping (span close, event push, histogram fold) since the last
    {!reset} — the self-overhead gauge, written as ["obs.overhead_s"]
    into every trace {!write}. *)

val reset : unit -> unit
(** Drop all recorded events, counters and histograms and restart the
    trace epoch. *)

(** {2 Recording} *)

module Span : sig
  val with_ : name:string -> ?attrs:attr list -> (unit -> 'a) -> 'a
  (** [with_ ~name ~attrs f] runs [f] inside a timed span.  When tracing
      is disabled this is just [f ()].  An exception closes the span
      (with an ["error"] attribute) and re-raises. *)
end

val count : ?by:float -> string -> unit
(** Increment a monotonic counter (default [by] 1.0). *)

val gauge : string -> float -> unit

val profile : label:string -> point list -> unit
(** Attach one GRAPE convergence profile to the trace. *)

(** {2 Introspection} *)

val events : unit -> event list
(** Recorded events in emission order (spans appear when they close, so
    children precede their parents). *)

val counter_value : string -> float
(** Current total of a counter.  Unknown counters — never incremented,
    or never incremented while tracing was enabled — read as [0.]
    rather than raising; reading is always safe. *)

val rollup : unit -> (string * int * float) list
(** Per-span-name [(name, count, total seconds)] — the shape embedded
    in the bench JSON under ["trace"].  Ordered by total seconds
    descending, with count (descending) and then name (ascending) as
    tie-breakers, so the ordering is fully deterministic even when
    several spans accumulate equal totals. *)

(** {2 Run-level metrics}

    Log-bucketed histograms for per-iteration quantities (compile
    latency, pulse duration, energy) and span latencies.  Bucket
    boundaries sit at [2^(k/8)] (~9% relative width), so percentile
    reads are within one bucket of the exact order statistic while an
    arbitrarily long run costs only O(buckets) memory — unlike
    {!events}, observations are folded into the registry and never
    accumulate per-observation state.

    Every closing {!Span.with_} also observes its duration under the
    span's name, so latency percentiles of instrumented code come for
    free.  Like the rest of the layer, {!Metrics.observe} is a no-op
    until {!enable}; the registry is cleared by {!reset}. *)

(** {2 Flight recorder}

    A bounded ring of the last N structured events per process, always
    on (independent of {!enable}) because appends are O(1) and
    allocation-free.  The supervising pool parent dumps its ring
    whenever it SIGKILLs, quarantines or reaps an abnormal worker, and
    {!Pqc_core.Fault} dumps when a fault plan fires — so a chaos failure
    leaves a replayable event tail instead of "worker 3 died".

    Capacity comes from [PQC_FLIGHT_EVENTS] (default 256); dumps are
    written only when [PQC_FLIGHT_DIR] (or an explicit [dir]) is
    configured, so normal runs never leave files behind. *)

module Flight : sig
  type entry = {
    f_seq : int;  (** Monotonic per process; survives ring wrap. *)
    f_ts : float;  (** Wall-clock seconds ({!Clock.now}). *)
    f_kind : string;
    f_run_id : string;  (** [""] when recorded outside any context. *)
    f_detail : string;
  }

  val record : kind:string -> ?run_id:string -> string -> unit
  (** Append one entry (the [string] is the detail).  O(1), no
      allocation beyond the caller's own strings, never raises. *)

  val reset : unit -> unit
  (** Logically empty the ring (O(1)).  Forked pool children call this
      right after the fork so a worker dump never replays parent
      history. *)

  val entries : unit -> entry list
  (** Live window, oldest first. *)

  val set_capacity : int -> unit
  (** Resize (and clear) the ring; test hook for wrap semantics. *)

  val dump : dir:string -> reason:string -> unit -> string option
  (** Write the ring as one text file ([flight-<pid>-w<worker>-<n>.txt],
      one entry per line) into [dir]; returns the path, or [None] when
      the ring is empty or the write fails.  File names embed pid,
      worker id and a per-process counter, so concurrent dumps from
      different processes can never interleave in one file. *)

  val dump_auto : reason:string -> unit -> string option
  (** {!dump} into [PQC_FLIGHT_DIR]; no-op ([None]) when unset. *)
end

module Metrics : sig
  type stat = {
    count : int;  (** Finite observations recorded. *)
    sum : float;
    min : float;
    max : float;
  }

  val observe : string -> float -> unit
  (** Record one observation (no-op when tracing is disabled; NaN and
      infinite values are dropped). *)

  val names : unit -> string list
  (** Histogram names, sorted. *)

  val stats : string -> stat option
  (** Exact count/sum/min/max ([None] for unknown histograms). *)

  val quantile : string -> float -> float
  (** [quantile name q] estimates the [q]-quantile ([0 <= q <= 1],
      clamped) from the log buckets: the geometric midpoint of the
      bucket holding the order statistic, clamped to the observed
      [min, max].  NaN for unknown or empty histograms. *)

  val percentiles : string -> float * float * float
  (** [(p50, p90, p99)]. *)

  val reset : unit -> unit
  (** Clear the registry only (events and counters are untouched);
      {!Obs.reset} also clears it.  Forked pool workers call this right
      after the fork so {!encode_all} ships exactly their own
      observations. *)

  val encode_all : unit -> string
  (** Single-line (newline-free) serialization of the whole registry
      for the pool pipe; [""] when the registry is empty. *)

  val absorb : string -> unit
  (** Merge a registry serialized by {!encode_all} in another process
      additively into this one (bucket counts, counts and sums add;
      min/max combine).  Undecodable records are dropped. *)

  val summary : unit -> string
  (** Rendered {!Pqc_util.Table}: per histogram, count, mean and
      p50/p90/p99/max. *)

  val to_json : unit -> string
  (** Deterministic JSON exposition: histograms sorted by name, each
      with count, mean, min, max, p50, p90, p99.  Non-finite values
      render as [null]. *)

  type export = {
    e_name : string;
    e_count : int;  (** All finite observations ([e_nonpos] included). *)
    e_sum : float;
    e_nonpos : int;  (** Observations [<= 0], below the log grid. *)
    e_buckets : (int * int) list;
        (** [(bucket index, count)], index ascending. *)
  }
  (** Raw bucket-level view of one histogram, for exposition formats
      that need exact buckets rather than quantile estimates. *)

  val bucket_upper : int -> float
  (** Upper edge [2^((k+1)/8)] of log bucket [k] — the ["le"] boundary
      published for that bucket. *)

  val export : unit -> export list
  (** All non-empty histograms, sorted by name. *)

  val prometheus : unit -> string
  (** Prometheus text format (0.0.4) over the live registry plus counter
      totals, last gauge values, and the ["obs.overhead_s"] self gauge.
      Histograms expose the exact log buckets as cumulative ["le"]
      series (below-grid observations fold in at the bottom; the [+Inf]
      bucket equals [_count]), so scraped counts reconstruct the
      registry losslessly.  Names are prefixed ["pqc_"] and sanitized to
      the Prometheus charset. *)

  (** Offline histogram aggregator.  A standalone registry value that
      merges {!encode_all}-serialized registries (e.g. the per-cell
      [metrics.reg] files a bench-matrix run leaves on disk) additively,
      with the same quantile semantics as the live registry.  Unlike the
      global registry it is independent of {!Obs.enable}/{!Obs.reset}:
      absorbing and querying work with tracing off, and nothing here
      touches the process's own telemetry. *)
  module Agg : sig
    type t

    val create : unit -> t

    val absorb : t -> string -> unit
    (** Merge one {!encode_all}-format line additively (bucket counts,
        counts and sums add; min/max combine).  Undecodable records are
        dropped, like the event codec. *)

    val names : t -> string list
    (** Histogram names, sorted. *)

    val stats : t -> string -> stat option
    val mean : t -> string -> float

    val quantile : t -> string -> float -> float
    (** Same estimator as {!Metrics.quantile}, over the merged buckets. *)

    val percentiles : t -> string -> float * float * float
    (** [(p50, p90, p99)]. *)

    val encode : t -> string
    (** Re-serialize the merged registry in {!encode_all} format. *)

    val export : t -> export list
    (** Bucket-level view of the merged histograms, sorted by name. *)

    val prometheus : t -> string
    (** Prometheus text exposition of the merged histograms — same
        mapping as {!Metrics.prometheus}, minus counters and gauges
        (serialized registries carry histograms only). *)
  end
end

(** {2 Export} *)

val to_chrome_json : ?normalize:bool -> unit -> string
(** Chrome trace-event JSON ([chrome://tracing] / Perfetto), fields in
    deterministic order.  [normalize] replaces every timestamp with the
    event's emission index and every duration with 1 — used by the
    golden-fixture test so the document is bit-stable. *)

val write : ?normalize:bool -> path:string -> unit -> unit
(** Atomically write {!to_chrome_json} to [path], stamping the
    ["obs.overhead_s"] self-overhead gauge first. *)

val flamegraph_of_chrome :
  ?mode:[ `Count | `Time ] -> string -> (string, string) result
(** Convert a Chrome trace document (as written by {!write}) into
    folded-stack lines (["root;child;leaf weight\n"], sorted by stack)
    for inferno / flamegraph.pl / speedscope.  Stacks are rebuilt from
    the explicit parent ids the exporter embeds in [args] — exact even
    for sampled traces.  [`Time] (default) weights by self time in
    integer microseconds; [`Count] weights each occurrence 1, which is
    bit-stable across repeated runs of the same workload. *)

val summary : unit -> string
(** Rendered {!Pqc_util.Table}: span counts and total milliseconds,
    counter totals, last gauge values. *)

(** {2 Worker-pool plumbing} *)

val mark : unit -> int
(** Current event count; pass to {!encode_since} to serialize only the
    events recorded after this point (e.g. since a fork). *)

val set_worker : int -> unit
(** Tag this process as pool worker [w] (1-based): subsequent events get
    [tid = w] and span ids move to a disjoint namespace so they cannot
    collide with the parent's or a sibling's. *)

val encode_since : int -> string
(** Single-line (newline-free) serialization of the events recorded
    after the given {!mark}; [""] when there are none or tracing is
    disabled. *)

val absorb : string -> unit
(** Append events serialized by {!encode_since} in another process to
    this process's buffer (and fold their counter increments into the
    totals).  Undecodable records are dropped — trace data is
    best-effort by design. *)
