(** Compilation telemetry: timed spans, monotonic counters, gauges, and
    per-GRAPE-run convergence profiles, exported as Chrome trace-event
    JSON plus a text summary table.

    The layer is {e disabled by default} and every instrumentation point
    is a no-op until {!enable} is called (or the [PQC_TRACE] environment
    variable is set, see below).  Tracing never changes compilation
    results: trace records carry timestamps, but pulse outputs are
    bit-for-bit identical with tracing on or off, and trace data is
    excluded from pulse-cache keys, checksums and the worker-pool result
    protocol (trace records travel on their own frames).

    State is global to the process.  Forked worker-pool children inherit
    the enabled flag and the open span stack, record into their own
    (copy-on-write) buffer, and ship their events back to the parent over
    the pool pipe ({!encode_since}/{!absorb}); inherited span ids stay
    valid, so reassembled child spans keep their correct parents.

    [PQC_TRACE] semantics: unset/empty/["0"] — disabled; ["1"], ["true"]
    or ["summary"] — enabled, text summary printed to stderr at exit;
    any other value — enabled, treated as a path and the Chrome trace
    JSON is written there at exit. *)

type attr = string * string
(** Span attribute: key and pre-rendered value. *)

type point = {
  iteration : int;
  infidelity : float;  (** [1 - fidelity] at that iteration. *)
  learning_rate : float;  (** Decayed ADAM learning rate in effect. *)
  grad_norm : float;  (** L2 norm of the flattened gradient. *)
}
(** One snapshot of a GRAPE optimization trajectory. *)

type event =
  | Span of {
      id : int;
      parent : int;  (** Enclosing span id; 0 at top level. *)
      name : string;
      attrs : attr list;
      ts : float;  (** Seconds since the trace epoch. *)
      dur : float;  (** Seconds. *)
      tid : int;  (** 0 in the parent; worker index + 1 in pool children. *)
    }
  | Count of { name : string; by : float; ts : float; tid : int }
      (** One increment of a monotonic counter (totals are accumulated at
          export time, so child increments merge additively). *)
  | Gauge of { name : string; value : float; ts : float; tid : int }
  | Profile of { label : string; points : point list; ts : float; tid : int }

(** {2 Lifecycle} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Drop all recorded events, counters and histograms and restart the
    trace epoch. *)

(** {2 Recording} *)

module Span : sig
  val with_ : name:string -> ?attrs:attr list -> (unit -> 'a) -> 'a
  (** [with_ ~name ~attrs f] runs [f] inside a timed span.  When tracing
      is disabled this is just [f ()].  An exception closes the span
      (with an ["error"] attribute) and re-raises. *)
end

val count : ?by:float -> string -> unit
(** Increment a monotonic counter (default [by] 1.0). *)

val gauge : string -> float -> unit

val profile : label:string -> point list -> unit
(** Attach one GRAPE convergence profile to the trace. *)

(** {2 Introspection} *)

val events : unit -> event list
(** Recorded events in emission order (spans appear when they close, so
    children precede their parents). *)

val counter_value : string -> float
(** Current total of a counter.  Unknown counters — never incremented,
    or never incremented while tracing was enabled — read as [0.]
    rather than raising; reading is always safe. *)

val rollup : unit -> (string * int * float) list
(** Per-span-name [(name, count, total seconds)] — the shape embedded
    in the bench JSON under ["trace"].  Ordered by total seconds
    descending, with count (descending) and then name (ascending) as
    tie-breakers, so the ordering is fully deterministic even when
    several spans accumulate equal totals. *)

(** {2 Run-level metrics}

    Log-bucketed histograms for per-iteration quantities (compile
    latency, pulse duration, energy) and span latencies.  Bucket
    boundaries sit at [2^(k/8)] (~9% relative width), so percentile
    reads are within one bucket of the exact order statistic while an
    arbitrarily long run costs only O(buckets) memory — unlike
    {!events}, observations are folded into the registry and never
    accumulate per-observation state.

    Every closing {!Span.with_} also observes its duration under the
    span's name, so latency percentiles of instrumented code come for
    free.  Like the rest of the layer, {!Metrics.observe} is a no-op
    until {!enable}; the registry is cleared by {!reset}. *)

module Metrics : sig
  type stat = {
    count : int;  (** Finite observations recorded. *)
    sum : float;
    min : float;
    max : float;
  }

  val observe : string -> float -> unit
  (** Record one observation (no-op when tracing is disabled; NaN and
      infinite values are dropped). *)

  val names : unit -> string list
  (** Histogram names, sorted. *)

  val stats : string -> stat option
  (** Exact count/sum/min/max ([None] for unknown histograms). *)

  val quantile : string -> float -> float
  (** [quantile name q] estimates the [q]-quantile ([0 <= q <= 1],
      clamped) from the log buckets: the geometric midpoint of the
      bucket holding the order statistic, clamped to the observed
      [min, max].  NaN for unknown or empty histograms. *)

  val percentiles : string -> float * float * float
  (** [(p50, p90, p99)]. *)

  val reset : unit -> unit
  (** Clear the registry only (events and counters are untouched);
      {!Obs.reset} also clears it.  Forked pool workers call this right
      after the fork so {!encode_all} ships exactly their own
      observations. *)

  val encode_all : unit -> string
  (** Single-line (newline-free) serialization of the whole registry
      for the pool pipe; [""] when the registry is empty. *)

  val absorb : string -> unit
  (** Merge a registry serialized by {!encode_all} in another process
      additively into this one (bucket counts, counts and sums add;
      min/max combine).  Undecodable records are dropped. *)

  val summary : unit -> string
  (** Rendered {!Pqc_util.Table}: per histogram, count, mean and
      p50/p90/p99/max. *)

  val to_json : unit -> string
  (** Deterministic JSON exposition: histograms sorted by name, each
      with count, mean, min, max, p50, p90, p99.  Non-finite values
      render as [null]. *)

  (** Offline histogram aggregator.  A standalone registry value that
      merges {!encode_all}-serialized registries (e.g. the per-cell
      [metrics.reg] files a bench-matrix run leaves on disk) additively,
      with the same quantile semantics as the live registry.  Unlike the
      global registry it is independent of {!Obs.enable}/{!Obs.reset}:
      absorbing and querying work with tracing off, and nothing here
      touches the process's own telemetry. *)
  module Agg : sig
    type t

    val create : unit -> t

    val absorb : t -> string -> unit
    (** Merge one {!encode_all}-format line additively (bucket counts,
        counts and sums add; min/max combine).  Undecodable records are
        dropped, like the event codec. *)

    val names : t -> string list
    (** Histogram names, sorted. *)

    val stats : t -> string -> stat option
    val mean : t -> string -> float

    val quantile : t -> string -> float -> float
    (** Same estimator as {!Metrics.quantile}, over the merged buckets. *)

    val percentiles : t -> string -> float * float * float
    (** [(p50, p90, p99)]. *)

    val encode : t -> string
    (** Re-serialize the merged registry in {!encode_all} format. *)
  end
end

(** {2 Export} *)

val to_chrome_json : ?normalize:bool -> unit -> string
(** Chrome trace-event JSON ([chrome://tracing] / Perfetto), fields in
    deterministic order.  [normalize] replaces every timestamp with the
    event's emission index and every duration with 1 — used by the
    golden-fixture test so the document is bit-stable. *)

val write : ?normalize:bool -> path:string -> unit -> unit
(** Atomically write {!to_chrome_json} to [path]. *)

val summary : unit -> string
(** Rendered {!Pqc_util.Table}: span counts and total milliseconds,
    counter totals, last gauge values. *)

(** {2 Worker-pool plumbing} *)

val mark : unit -> int
(** Current event count; pass to {!encode_since} to serialize only the
    events recorded after this point (e.g. since a fork). *)

val set_worker : int -> unit
(** Tag this process as pool worker [w] (1-based): subsequent events get
    [tid = w] and span ids move to a disjoint namespace so they cannot
    collide with the parent's or a sibling's. *)

val encode_since : int -> string
(** Single-line (newline-free) serialization of the events recorded
    after the given {!mark}; [""] when there are none or tracing is
    disabled. *)

val absorb : string -> unit
(** Append events serialized by {!encode_since} in another process to
    this process's buffer (and fold their counter increments into the
    totals).  Undecodable records are dropped — trace data is
    best-effort by design. *)
