type attr = string * string

type point = {
  iteration : int;
  infidelity : float;
  learning_rate : float;
  grad_norm : float;
}

type event =
  | Span of {
      id : int;
      parent : int;
      name : string;
      attrs : attr list;
      ts : float;
      dur : float;
      tid : int;
    }
  | Count of { name : string; by : float; ts : float; tid : int }
  | Gauge of { name : string; value : float; ts : float; tid : int }
  | Profile of { label : string; points : point list; ts : float; tid : int }

(* ---- wall clock ------------------------------------------------------
   Single indirection over Unix.gettimeofday.  Every span timestamp,
   deadline check and bench timer in the tree reads the wall clock
   through here, so swapping in a monotonic source (or a fake clock in a
   test) is a one-line change instead of a sweep. *)
module Clock = struct
  let default = Unix.gettimeofday
  let hook = ref default
  let now () = !hook ()
  let set f = hook := f
  let reset () = hook := default
end

(* ---- correlation contexts --------------------------------------------
   A run_id names one compile request; per-batch-item ids derive from it
   with a "#<idx>" suffix.  Ids are minted in the parent (before any
   fork) from a process-local counter plus a label hash, so the id
   stream is a pure function of the request sequence: workers:1 and
   workers:N runs mint identical ids.  The ambient context is what
   spans, cache entries, run-log lines and degradation records stamp
   themselves with at creation time. *)
module Ctx = struct
  let ambient : string option ref = ref None
  let minted = ref 0

  let fnv1a s =
    let h = ref 0x811c9dc5 in
    String.iter
      (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
      s;
    !h

  let mint label =
    incr minted;
    Printf.sprintf "r%03d-%08x" !minted (fnv1a label)

  let derive parent idx = parent ^ "#" ^ string_of_int idx
  let current () = !ambient
  let set c = ambient := c

  let with_ctx c f =
    let saved = !ambient in
    ambient := c;
    Fun.protect ~finally:(fun () -> ambient := saved) f

  let reset_minted () = minted := 0
end

(* Global, process-local trace state.  Forked pool children inherit a
   copy-on-write snapshot; everything they record past the fork point is
   shipped back explicitly via encode_since/absorb, so the parent never
   sees duplicates. *)
let enabled_flag = ref false
let t0 = ref 0.0
let events_rev = ref []
let n_events = ref 0
let stack = ref []
let next_id = ref 0
let tid = ref 0
let counters : (string, float) Hashtbl.t = Hashtbl.create 16

(* ---- histogram registry (Metrics) -------------------------------------
   Log-bucketed histograms with bucket boundaries at 2^(k/8) — ~9%
   relative width, so any quantile read off a bucket is within one
   bucket (a factor of 2^(1/8)) of the exact order statistic.  Unlike
   events, observations fold into fixed-size bucket tables, so a
   thousand-iteration variational run costs O(#buckets) memory, not
   O(#observations). *)

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_nonpos : int;  (* observations <= 0, kept out of the log grid *)
  h_buckets : (int, int) Hashtbl.t;
}

(* Every registry operation below is written against an explicit table
   so the same code serves both the live process-global registry and the
   offline aggregators used by the bench rollup (Metrics.Agg). *)
type hist_table = (string, hist) Hashtbl.t

let hists : hist_table = Hashtbl.create 16

let log_gamma = Float.log 2.0 /. 8.0
let bucket_of v = int_of_float (Float.floor (Float.log v /. log_gamma))
let bucket_mid k = Float.exp (log_gamma *. (float_of_int k +. 0.5))

let hist_in (tbl : hist_table) name =
  match Hashtbl.find_opt tbl name with
  | Some h -> h
  | None ->
    let h =
      { h_count = 0; h_sum = 0.0; h_min = infinity; h_max = neg_infinity;
        h_nonpos = 0; h_buckets = Hashtbl.create 16 }
    in
    Hashtbl.replace tbl name h;
    h

let hist_for name = hist_in hists name

(* Non-finite observations are dropped: a NaN would poison sum/min/max
   and has no bucket. *)
let metrics_observe name v =
  if !enabled_flag && Float.is_finite v then begin
    let h = hist_for name in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    if v <= 0.0 then h.h_nonpos <- h.h_nonpos + 1
    else begin
      let k = bucket_of v in
      Hashtbl.replace h.h_buckets k
        (1 + Option.value ~default:0 (Hashtbl.find_opt h.h_buckets k))
    end
  end

(* Backstop against a runaway instrumentation loop eating the heap; a
   real compile records a few thousand events. *)
let max_events = 500_000

let enabled () = !enabled_flag

(* Sampling keeps 1 of every [sample_stride] span/profile pushes (a
   deterministic stride, not a coin flip).  Counters, gauges and the
   histogram registry are never sampled, so metric totals stay exact at
   any rate; only the event buffer thins out. *)
let sample_stride = ref 1
let sample_tick = ref 0

let set_trace_sample rate =
  let stride =
    if Float.is_finite rate && rate > 0.0 && rate < 1.0 then
      max 1 (int_of_float (Float.round (1.0 /. rate)))
    else 1
  in
  sample_stride := stride;
  sample_tick := 0

let sample_keep () =
  if !sample_stride <= 1 then true
  else begin
    incr sample_tick;
    if !sample_tick >= !sample_stride then begin
      sample_tick := 0;
      true
    end
    else false
  end

(* Cumulative seconds the tracing layer spent on its own bookkeeping
   (span close, event push, histogram fold) — the self-overhead gauge. *)
let overhead = ref 0.0
let overhead_seconds () = !overhead

let enable () =
  if not !enabled_flag then begin
    enabled_flag := true;
    if !t0 = 0.0 then t0 := Clock.now ()
  end

let disable () = enabled_flag := false

let reset () =
  events_rev := [];
  n_events := 0;
  stack := [];
  next_id := 0;
  Hashtbl.reset counters;
  Hashtbl.reset hists;
  sample_tick := 0;
  overhead := 0.0;
  Ctx.reset_minted ();
  t0 := Clock.now ()

let now () = Clock.now () -. !t0

let push e =
  if !n_events < max_events then begin
    events_rev := e :: !events_rev;
    incr n_events
  end

let events () = List.rev !events_rev
let mark () = !n_events

let set_worker w =
  tid := w;
  next_id := !next_id + (w * 1_000_000)

(* ---- flight recorder --------------------------------------------------
   A bounded ring of the last N structured events, always on (even with
   tracing disabled) because the append path is O(1) and allocation-free:
   parallel pre-sized arrays hold references to caller-owned strings plus
   an unboxed float timestamp.  The parent dumps its ring to a file when
   the supervised pool kills/quarantines/reaps a worker or a fault plan
   fires, turning "worker 3 died" into a replayable event tail. *)
module Flight = struct
  type entry = {
    f_seq : int;  (* monotonic per process; survives ring wrap *)
    f_ts : float;  (* wall clock, Clock.now *)
    f_kind : string;
    f_run_id : string;  (* "" when no ambient context *)
    f_detail : string;
  }

  let default_capacity = 256

  let env_capacity () =
    match Sys.getenv_opt "PQC_FLIGHT_EVENTS" with
    | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n > 0 -> n
      | _ -> default_capacity)
    | None -> default_capacity

  let capacity = ref (env_capacity ())
  let kinds = ref (Array.make !capacity "")
  let runs = ref (Array.make !capacity "")
  let details = ref (Array.make !capacity "")
  let tss = ref (Array.make !capacity 0.0)
  let total = ref 0

  let set_capacity n =
    let n = max 1 n in
    capacity := n;
    kinds := Array.make n "";
    runs := Array.make n "";
    details := Array.make n "";
    tss := Array.make n 0.0;
    total := 0

  (* Child post-fork: logically empty the ring so a worker's dump never
     replays parent history.  O(1): stale slots are simply out of the
     live window. *)
  let reset () = total := 0

  let record ~kind ?(run_id = "") detail =
    let i = !total mod !capacity in
    !kinds.(i) <- kind;
    !runs.(i) <- run_id;
    !details.(i) <- detail;
    !tss.(i) <- Clock.now ();
    incr total

  let entries () =
    let n = min !total !capacity in
    let first = !total - n in
    List.init n (fun j ->
        let seq = first + j in
        let i = seq mod !capacity in
        {
          f_seq = seq;
          f_ts = !tss.(i);
          f_kind = !kinds.(i);
          f_run_id = !runs.(i);
          f_detail = !details.(i);
        })

  (* Dumps are forensic text, not a codec: newlines and tabs inside a
     field are flattened so one entry is always one line. *)
  let flat s =
    String.map (function '\n' | '\r' | '\t' -> ' ' | c -> c) s

  let dump_counter = ref 0

  let render ~reason =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "# flight-recorder dump pid=%d worker=%d reason=%s\n"
         (Unix.getpid ()) !tid (flat reason));
    List.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf "%d\t%.6f\t%s\t%s\t%s\n" e.f_seq e.f_ts
             (flat e.f_kind)
             (if e.f_run_id = "" then "-" else flat e.f_run_id)
             (flat e.f_detail)))
      (entries ());
    Buffer.contents buf

  let dump ~dir ~reason () =
    if !total = 0 then None
    else begin
      incr dump_counter;
      let path =
        Filename.concat dir
          (Printf.sprintf "flight-%d-w%d-%d.txt" (Unix.getpid ()) !tid
             !dump_counter)
      in
      match
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (render ~reason));
        Sys.rename tmp path
      with
      | () -> Some path
      | exception _ -> None
    end

  let configured_dir () =
    match Sys.getenv_opt "PQC_FLIGHT_DIR" with
    | Some d when String.trim d <> "" -> Some (String.trim d)
    | _ -> None

  (* No-op unless PQC_FLIGHT_DIR is configured: a normal run must never
     leave dump files behind. *)
  let dump_auto ~reason () =
    match configured_dir () with
    | Some dir -> dump ~dir ~reason ()
    | None -> None
end

module Span = struct
  let with_ ~name ?(attrs = []) f =
    if not !enabled_flag then f ()
    else begin
      incr next_id;
      let id = !next_id in
      let parent = match !stack with p :: _ -> p | [] -> 0 in
      stack := id :: !stack;
      let ts = now () in
      let close attrs =
        (match !stack with
        | s :: rest when s = id -> stack := rest
        | _ -> stack := List.filter (fun s -> s <> id) !stack);
        let t_close = now () in
        let dur = t_close -. ts in
        (* Spans stamp themselves with the ambient correlation context,
           so a grep for one run_id pulls its spans out of the trace. *)
        let attrs =
          match Ctx.current () with
          | Some rid -> ("run_id", rid) :: attrs
          | None -> attrs
        in
        let rid = match Ctx.current () with Some r -> r | None -> "" in
        Flight.record ~kind:"span" ~run_id:rid name;
        if sample_keep () then
          push (Span { id; parent; name; attrs; ts; dur; tid = !tid });
        (* Every span close also feeds the latency histogram of its
           name, so percentiles of e.g. engine.search come for free —
           sampling never touches the registry. *)
        metrics_observe name dur;
        overhead := !overhead +. (now () -. t_close)
      in
      match f () with
      | v ->
        close attrs;
        v
      | exception e ->
        close (attrs @ [ ("error", Printexc.to_string e) ]);
        raise e
    end
end

let counter_value name =
  match Hashtbl.find_opt counters name with Some v -> v | None -> 0.0

let count ?(by = 1.0) name =
  if !enabled_flag then begin
    Hashtbl.replace counters name (counter_value name +. by);
    push (Count { name; by; ts = now (); tid = !tid })
  end

let gauge name value =
  if !enabled_flag then push (Gauge { name; value; ts = now (); tid = !tid })

let profile ~label points =
  if !enabled_flag && sample_keep () then
    push (Profile { label; points; ts = now (); tid = !tid })

let rollup () =
  let tbl : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (function
      | Span s ->
        let n, total =
          match Hashtbl.find_opt tbl s.name with
          | Some (n, t) -> (n, t)
          | None -> (0, 0.0)
        in
        Hashtbl.replace tbl s.name (n + 1, total +. s.dur)
      | _ -> ())
    (events ());
  Hashtbl.fold (fun name (n, t) acc -> (name, n, t) :: acc) tbl []
  |> List.sort (fun (a, na, ta) (b, nb, tb) ->
         (* Heaviest spans first; count then name break ties, so the
            ordering is fully deterministic even under equal totals. *)
         match Float.compare tb ta with
         | 0 -> ( match Int.compare nb na with
                | 0 -> String.compare a b
                | c -> c)
         | c -> c)

(* ---- pipe codec -------------------------------------------------------
   Events serialized for the pool pipe: records joined by '\x1e', fields
   by '\x1f', list elements by '\x1d', pair halves by '\x1c'.  Strings
   are escaped so no separator, newline or tab survives (the pool frames
   lines and splits at the first tab). *)

let esc s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\x1e' -> Buffer.add_string buf "\\e"
      | '\x1f' -> Buffer.add_string buf "\\f"
      | '\x1d' -> Buffer.add_string buf "\\g"
      | '\x1c' -> Buffer.add_string buf "\\h"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unesc s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char buf '\\'
       | 'n' -> Buffer.add_char buf '\n'
       | 't' -> Buffer.add_char buf '\t'
       | 'e' -> Buffer.add_char buf '\x1e'
       | 'f' -> Buffer.add_char buf '\x1f'
       | 'g' -> Buffer.add_char buf '\x1d'
       | 'h' -> Buffer.add_char buf '\x1c'
       | c ->
         Buffer.add_char buf '\\';
         Buffer.add_char buf c);
       incr i
     end
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

let encode_event e =
  let f = Printf.sprintf "%h" in
  match e with
  | Span s ->
    let attrs =
      String.concat "\x1d"
        (List.map (fun (k, v) -> esc k ^ "\x1c" ^ esc v) s.attrs)
    in
    String.concat "\x1f"
      [ "S"; string_of_int s.id; string_of_int s.parent; esc s.name;
        f s.ts; f s.dur; string_of_int s.tid; attrs ]
  | Count c ->
    String.concat "\x1f"
      [ "C"; esc c.name; f c.by; f c.ts; string_of_int c.tid ]
  | Gauge g ->
    String.concat "\x1f"
      [ "G"; esc g.name; f g.value; f g.ts; string_of_int g.tid ]
  | Profile p ->
    let pts =
      String.concat "\x1d"
        (List.map
           (fun pt ->
             String.concat "\x1c"
               [ string_of_int pt.iteration; f pt.infidelity;
                 f pt.learning_rate; f pt.grad_norm ])
           p.points)
    in
    String.concat "\x1f"
      [ "P"; esc p.label; f p.ts; string_of_int p.tid; pts ]

let decode_event s =
  let fields = String.split_on_char '\x1f' s in
  match fields with
  | [ "S"; id; parent; name; ts; dur; tid; attrs ] ->
    let attrs =
      if attrs = "" then []
      else
        String.split_on_char '\x1d' attrs
        |> List.filter_map (fun pair ->
               match String.index_opt pair '\x1c' with
               | Some i ->
                 Some
                   ( unesc (String.sub pair 0 i),
                     unesc
                       (String.sub pair (i + 1) (String.length pair - i - 1))
                   )
               | None -> None)
    in
    Some
      (Span
         {
           id = int_of_string id;
           parent = int_of_string parent;
           name = unesc name;
           attrs;
           ts = float_of_string ts;
           dur = float_of_string dur;
           tid = int_of_string tid;
         })
  | [ "C"; name; by; ts; tid ] ->
    Some
      (Count
         {
           name = unesc name;
           by = float_of_string by;
           ts = float_of_string ts;
           tid = int_of_string tid;
         })
  | [ "G"; name; value; ts; tid ] ->
    Some
      (Gauge
         {
           name = unesc name;
           value = float_of_string value;
           ts = float_of_string ts;
           tid = int_of_string tid;
         })
  | [ "P"; label; ts; tid; pts ] ->
    let points =
      if pts = "" then []
      else
        String.split_on_char '\x1d' pts
        |> List.filter_map (fun pt ->
               match String.split_on_char '\x1c' pt with
               | [ it; inf; lr; gn ] ->
                 Some
                   {
                     iteration = int_of_string it;
                     infidelity = float_of_string inf;
                     learning_rate = float_of_string lr;
                     grad_norm = float_of_string gn;
                   }
               | _ -> None)
    in
    Some
      (Profile
         {
           label = unesc label;
           points;
           ts = float_of_string ts;
           tid = int_of_string tid;
         })
  | _ -> None

let encode_since m =
  let fresh = !n_events - m in
  if fresh <= 0 then ""
  else begin
    let rec take n l acc =
      if n = 0 then acc
      else match l with [] -> acc | x :: rest -> take (n - 1) rest (x :: acc)
    in
    let recent = take fresh !events_rev [] in
    String.concat "\x1e" (List.map encode_event recent)
  end

let absorb line =
  if line <> "" then
    String.split_on_char '\x1e' line
    |> List.iter (fun s ->
           match (try decode_event s with _ -> None) with
           | None -> ()
           | Some e ->
             (match e with
             | Count c ->
               Hashtbl.replace counters c.name (counter_value c.name +. c.by)
             | _ -> ());
             push e)

(* One shared escaper for every JSON writer in the tree — see
   {!Pqc_util.Jsonx.escape_string}. *)
let json_string = Pqc_util.Jsonx.escape_string

let json_float f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

(* ---- run-level metrics ----------------------------------------------- *)

module Metrics = struct
  type stat = { count : int; sum : float; min : float; max : float }

  let observe = metrics_observe

  let reset () = Hashtbl.reset hists

  let names_in (tbl : hist_table) =
    Hashtbl.fold (fun name _ acc -> name :: acc) tbl []
    |> List.sort String.compare

  let names () = names_in hists

  let stats_in (tbl : hist_table) name =
    Hashtbl.find_opt tbl name
    |> Option.map (fun h ->
           { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max })

  let stats name = stats_in hists name

  let quantile_in (tbl : hist_table) name q =
    match Hashtbl.find_opt tbl name with
    | None -> Float.nan
    | Some h when h.h_count = 0 -> Float.nan
    | Some h ->
      let q = Float.min 1.0 (Float.max 0.0 q) in
      let rank =
        max 1
          (min h.h_count (int_of_float (Float.ceil (q *. float_of_int h.h_count))))
      in
      if rank <= h.h_nonpos then h.h_min
      else begin
        let buckets =
          Hashtbl.fold (fun k n acc -> (k, n) :: acc) h.h_buckets []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        in
        let rec walk seen = function
          | [] -> h.h_max
          | (k, n) :: rest ->
            let seen = seen + n in
            if seen >= rank then
              Float.max h.h_min (Float.min h.h_max (bucket_mid k))
            else walk seen rest
        in
        walk h.h_nonpos buckets
      end

  let quantile name q = quantile_in hists name q

  let percentiles_in tbl name =
    (quantile_in tbl name 0.5, quantile_in tbl name 0.9, quantile_in tbl name 0.99)

  let percentiles name = percentiles_in hists name

  (* Pipe codec for the fork pool, same escaping discipline as the event
     codec: records '\x1e', fields '\x1f', bucket list '\x1d', bucket
     pair '\x1c'.  A forked child resets its (copy-on-write) registry
     right after the fork, so encode_all ships exactly the child's own
     observations and absorb can merge them additively. *)
  let encode_in (tbl : hist_table) =
    if Hashtbl.length tbl = 0 then ""
    else
      Hashtbl.fold (fun name h acc -> (name, h) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      |> List.filter (fun (_, h) -> h.h_count > 0)
      |> List.map (fun (name, h) ->
             let buckets =
               Hashtbl.fold (fun k n acc -> (k, n) :: acc) h.h_buckets []
               |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
               |> List.map (fun (k, n) ->
                      string_of_int k ^ "\x1c" ^ string_of_int n)
               |> String.concat "\x1d"
             in
             String.concat "\x1f"
               [ esc name; string_of_int h.h_count;
                 Printf.sprintf "%h" h.h_sum; Printf.sprintf "%h" h.h_min;
                 Printf.sprintf "%h" h.h_max; string_of_int h.h_nonpos;
                 buckets ])
      |> String.concat "\x1e"

  let encode_all () = encode_in hists

  let decode_hist s =
    match String.split_on_char '\x1f' s with
    | [ name; count; sum; vmin; vmax; nonpos; buckets ] ->
      let buckets =
        if buckets = "" then []
        else
          String.split_on_char '\x1d' buckets
          |> List.filter_map (fun pair ->
                 match String.index_opt pair '\x1c' with
                 | Some i ->
                   Some
                     ( int_of_string (String.sub pair 0 i),
                       int_of_string
                         (String.sub pair (i + 1) (String.length pair - i - 1))
                     )
                 | None -> None)
      in
      Some
        ( unesc name,
          int_of_string count,
          float_of_string sum,
          float_of_string vmin,
          float_of_string vmax,
          int_of_string nonpos,
          buckets )
    | _ -> None

  let absorb_in (tbl : hist_table) line =
    if line <> "" then
      String.split_on_char '\x1e' line
      |> List.iter (fun s ->
             match (try decode_hist s with _ -> None) with
             | None -> ()  (* best-effort, like the event codec *)
             | Some (name, count, sum, vmin, vmax, nonpos, buckets) ->
               let h = hist_in tbl name in
               h.h_count <- h.h_count + count;
               h.h_sum <- h.h_sum +. sum;
               h.h_min <- Float.min h.h_min vmin;
               h.h_max <- Float.max h.h_max vmax;
               h.h_nonpos <- h.h_nonpos + nonpos;
               List.iter
                 (fun (k, n) ->
                   Hashtbl.replace h.h_buckets k
                     (n
                     + Option.value ~default:0 (Hashtbl.find_opt h.h_buckets k)))
                 buckets)

  let absorb line = absorb_in hists line

  let mean_in tbl name =
    match stats_in tbl name with
    | Some s when s.count > 0 -> s.sum /. float_of_int s.count
    | Some _ | None -> Float.nan

  let mean name = mean_in hists name

  let summary () =
    let t =
      Pqc_util.Table.create
        [ "metric"; "count"; "mean"; "p50"; "p90"; "p99"; "max" ]
    in
    List.iter
      (fun name ->
        match stats name with
        | None -> ()
        | Some s ->
          let p50, p90, p99 = percentiles name in
          let cell v = Pqc_util.Table.cell_f ~decimals:6 v in
          Pqc_util.Table.add_row t
            [ name; string_of_int s.count; cell (mean name); cell p50;
              cell p90; cell p99; cell s.max ])
      (names ());
    Pqc_util.Table.render t

  let to_json () =
    let buf = Buffer.create 512 in
    Buffer.add_string buf "{\n  \"metrics\": [";
    let first = ref true in
    List.iter
      (fun name ->
        match stats name with
        | None -> ()
        | Some s ->
          let p50, p90, p99 = percentiles name in
          if !first then first := false else Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "\n    {\"name\": %s, \"count\": %d, \"mean\": %s, \"min\": \
                %s, \"max\": %s, \"p50\": %s, \"p90\": %s, \"p99\": %s}"
               (json_string name) s.count
               (json_float (mean name))
               (json_float s.min) (json_float s.max) (json_float p50)
               (json_float p90) (json_float p99)))
      (names ());
    Buffer.add_string buf "\n  ]\n}\n";
    Buffer.contents buf

  (* ---- bucket export & Prometheus text exposition -------------------- *)

  type export = {
    e_name : string;
    e_count : int;
    e_sum : float;
    e_nonpos : int;
    e_buckets : (int * int) list;  (* (bucket index, count), index asc *)
  }

  (* Upper edge of log bucket [k]: 2^((k+1)/8) — the "le" boundary the
     Prometheus exposition publishes for that bucket. *)
  let bucket_upper k = Float.exp (log_gamma *. float_of_int (k + 1))

  let export_in (tbl : hist_table) =
    names_in tbl
    |> List.filter_map (fun name ->
           match Hashtbl.find_opt tbl name with
           | None -> None
           | Some h when h.h_count = 0 -> None
           | Some h ->
             let buckets =
               Hashtbl.fold (fun k n acc -> (k, n) :: acc) h.h_buckets []
               |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
             in
             Some
               {
                 e_name = name;
                 e_count = h.h_count;
                 e_sum = h.h_sum;
                 e_nonpos = h.h_nonpos;
                 e_buckets = buckets;
               })

  let export () = export_in hists

  let prom_name name =
    let b = Buffer.create (String.length name + 4) in
    Buffer.add_string b "pqc_";
    String.iter
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' ->
          Buffer.add_char b c
        | _ -> Buffer.add_char b '_')
      name;
    Buffer.contents b

  let prom_float v =
    if Float.is_nan v then "NaN"
    else if v = Float.infinity then "+Inf"
    else if v = Float.neg_infinity then "-Inf"
    else Printf.sprintf "%.9g" v

  (* Prometheus text format (version 0.0.4).  Histogram buckets are the
     exact log buckets: "le" is the upper edge 2^((k+1)/8) of each
     occupied bucket, cumulative counts fold the below-grid (<= 0)
     observations in at the bottom, and the +Inf bucket equals _count,
     so scraped counts reconstruct the registry losslessly. *)
  let prometheus_render ?(counters = []) ?(gauges = []) (tbl : hist_table) =
    let buf = Buffer.create 2048 in
    List.iter
      (fun e ->
        let m = prom_name e.e_name in
        Buffer.add_string buf
          (Printf.sprintf
             "# HELP %s Log-bucket histogram for \"%s\" (gamma = 2^(1/8)).\n"
             m e.e_name);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" m);
        let cum = ref e.e_nonpos in
        List.iter
          (fun (k, n) ->
            cum := !cum + n;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" m
                 (prom_float (bucket_upper k))
                 !cum))
          e.e_buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m e.e_count);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum %s\n" m (prom_float e.e_sum));
        Buffer.add_string buf (Printf.sprintf "%s_count %d\n" m e.e_count))
      (export_in tbl);
    List.iter
      (fun (name, v) ->
        let m = prom_name name ^ "_total" in
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s Monotonic counter \"%s\".\n" m name);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" m);
        Buffer.add_string buf (Printf.sprintf "%s %s\n" m (prom_float v)))
      (List.sort (fun (a, _) (b, _) -> String.compare a b) counters);
    List.iter
      (fun (name, v) ->
        let m = prom_name name in
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s Gauge \"%s\" (last value).\n" m name);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" m);
        Buffer.add_string buf (Printf.sprintf "%s %s\n" m (prom_float v)))
      (List.sort (fun (a, _) (b, _) -> String.compare a b) gauges);
    Buffer.contents buf

  let prometheus () =
    let cs =
      Hashtbl.fold (fun name v acc -> (name, v) :: acc) counters []
    in
    let gauge_tbl : (string, float) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (function
        | Gauge g -> Hashtbl.replace gauge_tbl g.name g.value
        | _ -> ())
      (events ());
    Hashtbl.replace gauge_tbl "obs.overhead_s" (overhead_seconds ());
    let gs = Hashtbl.fold (fun name v acc -> (name, v) :: acc) gauge_tbl [] in
    prometheus_render ~counters:cs ~gauges:gs hists

  (* Offline aggregator over serialized registries.  Unlike the global
     registry this is a plain value: it ignores the enabled flag and is
     untouched by {!reset}, so a rollup pass can merge the [encode_all]
     output of many finished runs (read back from disk) without tracing
     being live and without stomping on the process's own telemetry. *)
  module Agg = struct
    type t = hist_table

    let create () : t = Hashtbl.create 16
    let absorb = absorb_in
    let names = names_in
    let stats = stats_in
    let mean = mean_in
    let quantile = quantile_in
    let percentiles = percentiles_in
    let encode = encode_in
    let export = export_in
    let prometheus t = prometheus_render t
  end
end

(* ---- Chrome trace-event export --------------------------------------- *)

let micros s = Printf.sprintf "%.3f" (s *. 1e6)

let to_chrome_json ?(normalize = false) () =
  let buf = Buffer.create 4096 in
  let totals : (string, float) Hashtbl.t = Hashtbl.create 16 in
  Buffer.add_string buf "{\n  \"traceEvents\": [\n";
  let first = ref true in
  let emit_event ~name ~ph ~ts ~tid extra =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf "    {\"name\": ";
    Buffer.add_string buf (json_string name);
    Buffer.add_string buf (Printf.sprintf ", \"ph\": \"%s\", \"ts\": %s" ph ts);
    Buffer.add_string buf extra;
    Buffer.add_string buf (Printf.sprintf ", \"pid\": 1, \"tid\": %d}" tid)
  in
  List.iteri
    (fun i e ->
      let ts s = if normalize then string_of_int i else micros s in
      match e with
      | Span s ->
        let dur = if normalize then "1" else micros s.dur in
        let args =
          String.concat ", "
            (Printf.sprintf "\"id\": \"%d\"" s.id
            :: Printf.sprintf "\"parent\": \"%d\"" s.parent
            :: List.map
                 (fun (k, v) ->
                   Printf.sprintf "%s: %s" (json_string k) (json_string v))
                 s.attrs)
        in
        emit_event ~name:s.name ~ph:"X" ~ts:(ts s.ts) ~tid:s.tid
          (Printf.sprintf ", \"dur\": %s, \"args\": {%s}" dur args)
      | Count c ->
        let total =
          match Hashtbl.find_opt totals c.name with
          | Some t -> t +. c.by
          | None -> c.by
        in
        Hashtbl.replace totals c.name total;
        emit_event ~name:c.name ~ph:"C" ~ts:(ts c.ts) ~tid:c.tid
          (Printf.sprintf ", \"args\": {%s: %s}" (json_string c.name)
             (json_float total))
      | Gauge g ->
        emit_event ~name:g.name ~ph:"C" ~ts:(ts g.ts) ~tid:g.tid
          (Printf.sprintf ", \"args\": {%s: %s}" (json_string g.name)
             (json_float g.value))
      | Profile p ->
        let col f = String.concat ", " (List.map f p.points) in
        let args =
          String.concat ""
            [ "\"label\": "; json_string p.label;
              ", \"iteration\": [";
              col (fun pt -> string_of_int pt.iteration);
              "], \"infidelity\": [";
              col (fun pt -> json_float pt.infidelity);
              "], \"learning_rate\": [";
              col (fun pt -> json_float pt.learning_rate);
              "], \"grad_norm\": [";
              col (fun pt -> json_float pt.grad_norm);
              "]" ]
        in
        emit_event
          ~name:("grape.profile:" ^ p.label)
          ~ph:"i" ~ts:(ts p.ts) ~tid:p.tid
          (Printf.sprintf ", \"s\": \"t\", \"args\": {%s}" args))
    (events ());
  Buffer.add_string buf "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
  Buffer.contents buf

let write ?normalize ~path () =
  (* Stamp the self-overhead gauge so every written trace carries the
     cost of its own instrumentation. *)
  gauge "obs.overhead_s" (overhead_seconds ());
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_chrome_json ?normalize ()));
  Sys.rename tmp path

(* ---- folded-stack flamegraph export -----------------------------------
   Convert a Chrome trace document (as written by {!write}) into
   folded-stack lines ("root;child;leaf weight") consumable by inferno /
   flamegraph.pl / speedscope.  Stacks are rebuilt from the explicit
   parent ids our exporter embeds in [args], not from interval
   containment, so reconstruction is exact even for sampled traces.
   [`Count] weights each span occurrence 1 (deterministic across runs of
   the same workload); [`Time] weights by self time in integer
   microseconds. *)
let flamegraph_of_chrome ?(mode = `Time) doc =
  match Pqc_util.Jsonx.parse doc with
  | Error e -> Error ("trace parse error: " ^ e)
  | Ok j -> (
    match Option.bind (Pqc_util.Jsonx.member "traceEvents" j)
            Pqc_util.Jsonx.to_list
    with
    | None -> Error "not a Chrome trace document (no traceEvents array)"
    | Some evs ->
      let spans = ref [] in
      List.iter
        (fun ev ->
          let str k = Option.bind (Pqc_util.Jsonx.member k ev)
                        Pqc_util.Jsonx.to_string in
          let num k = Option.bind (Pqc_util.Jsonx.member k ev)
                        Pqc_util.Jsonx.to_float in
          let args = Pqc_util.Jsonx.member "args" ev in
          let arg_str k =
            Option.bind args (fun a ->
                Option.bind (Pqc_util.Jsonx.member k a)
                  Pqc_util.Jsonx.to_string)
          in
          match (str "ph", str "name", arg_str "id") with
          | Some "X", Some name, Some id ->
            let parent = Option.value ~default:"0" (arg_str "parent") in
            let dur = Option.value ~default:0.0 (num "dur") in
            spans := (id, (name, parent, dur)) :: !spans
          | _ -> ())
        evs;
      let spans = List.rev !spans in
      let by_id = Hashtbl.create 64 in
      List.iter (fun (id, s) -> Hashtbl.replace by_id id s) spans;
      (* Self time: duration minus the summed durations of direct
         children (clamped at 0 against timer skew). *)
      let child_dur = Hashtbl.create 64 in
      List.iter
        (fun (_, (_, parent, dur)) ->
          if parent <> "0" then
            Hashtbl.replace child_dur parent
              (dur
              +. Option.value ~default:0.0 (Hashtbl.find_opt child_dur parent)))
        spans;
      (* Folded-format separators must not appear inside a frame name. *)
      let frame name =
        String.map (function ';' | ' ' | '\n' | '\t' -> '_' | c -> c) name
      in
      let stack_of id =
        let rec up id acc depth =
          if depth > 1024 then acc  (* cycle guard on malformed input *)
          else
            match Hashtbl.find_opt by_id id with
            | None -> acc
            | Some (name, parent, _) ->
              if parent = "0" then frame name :: acc
              else up parent (frame name :: acc) (depth + 1)
        in
        String.concat ";" (up id [] 0)
      in
      let weights = Hashtbl.create 64 in
      List.iter
        (fun (id, (_, _, dur)) ->
          let w =
            match mode with
            | `Count -> 1
            | `Time ->
              let self =
                dur
                -. Option.value ~default:0.0 (Hashtbl.find_opt child_dur id)
              in
              max 0 (int_of_float (Float.round self))
          in
          let stack = stack_of id in
          if stack <> "" then
            Hashtbl.replace weights stack
              (w + Option.value ~default:0 (Hashtbl.find_opt weights stack)))
        spans;
      let lines =
        Hashtbl.fold (fun stack w acc -> (stack, w) :: acc) weights []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map (fun (stack, w) -> Printf.sprintf "%s %d" stack w)
      in
      Ok (String.concat "\n" lines ^ if lines = [] then "" else "\n"))

let summary () =
  let t = Pqc_util.Table.create [ "name"; "kind"; "count"; "total" ] in
  List.iter
    (fun (name, n, total) ->
      Pqc_util.Table.add_row t
        [ name; "span"; string_of_int n;
          Pqc_util.Table.cell_f ~decimals:3 (total *. 1e3) ^ " ms" ])
    (rollup ());
  let incs : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let gauges : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let profiles = ref [] in
  List.iter
    (function
      | Count c ->
        Hashtbl.replace incs c.name
          (1 + Option.value ~default:0 (Hashtbl.find_opt incs c.name))
      | Gauge g -> Hashtbl.replace gauges g.name g.value
      | Profile p -> profiles := (p.label, List.length p.points) :: !profiles
      | Span _ -> ())
    (events ());
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) incs []
  |> List.sort compare
  |> List.iter (fun (name, n) ->
         Pqc_util.Table.add_row t
           [ name; "counter"; string_of_int n;
             Pqc_util.Table.cell_f ~decimals:3 (counter_value name) ]);
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) gauges []
  |> List.sort compare
  |> List.iter (fun (name, v) ->
         Pqc_util.Table.add_row t
           [ name; "gauge"; ""; Pqc_util.Table.cell_f ~decimals:3 v ]);
  List.rev !profiles
  |> List.iter (fun (label, n) ->
         Pqc_util.Table.add_row t [ label; "profile"; string_of_int n; "" ]);
  Pqc_util.Table.render t

(* PQC_TRACE: "1"/"true"/"summary" enable with a stderr summary at exit;
   any other non-empty, non-"0" value enables and is treated as the
   output path for the Chrome trace.  Forked pool children exit through
   Unix._exit, which skips at_exit, so only the parent ever writes. *)
(* PQC_TRACE_SAMPLE: keep roughly this fraction of span/profile events
   (deterministic stride, metrics always exact).  Parsed once at load;
   unparseable values fall back to 1.0 (keep everything). *)
let () =
  match Sys.getenv_opt "PQC_TRACE_SAMPLE" with
  | None -> ()
  | Some v -> (
    match float_of_string_opt (String.trim v) with
    | Some r -> set_trace_sample r
    | None -> ())

let () =
  match Sys.getenv_opt "PQC_TRACE" with
  | None -> ()
  | Some v -> (
    let v = String.trim v in
    if v = "" || v = "0" then ()
    else begin
      enable ();
      match v with
      | "1" | "true" | "summary" ->
        at_exit (fun () ->
            if !n_events > 0 then (
              prerr_string (summary ());
              prerr_newline ()))
      | path -> at_exit (fun () -> try write ~path () with _ -> ())
    end)
