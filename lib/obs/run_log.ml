type compile_info = {
  strategy : string;
  precompute_s : float;
  compile_latency_s : float;
  pulse_duration_ns : float;
  gate_duration_ns : float;
  cache_hits : int;
  degradations : int;
}

type t = {
  oc : out_channel;
  algo : string;
  label : string;
  info : compile_info option;
  flush_every : int;
  t_start : float;
  mutable t_last : float;
  mutable written : int;
  mutable closed : bool;
}

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* JSON has no inf/nan tokens; render them as null so every line parses. *)
let json_float f = if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

let create ?info ?(flush_every = 1) ~algo ~label ~path () =
  let oc = open_out path in
  let now = Unix.gettimeofday () in
  { oc; algo; label; info; flush_every = max 1 flush_every; t_start = now;
    t_last = now; written = 0; closed = false }

let record t ~iteration ~energy =
  if not t.closed then begin
    let now = Unix.gettimeofday () in
    let iter_s = now -. t.t_last in
    t.t_last <- now;
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"algo\": %s, \"label\": %s, \"iteration\": %d, \"energy\": %s, \
          \"iteration_s\": %s, \"elapsed_s\": %s"
         (json_string t.algo) (json_string t.label) iteration
         (json_float energy) (json_float iter_s)
         (json_float (now -. t.t_start)));
    (match t.info with
    | None -> ()
    | Some i ->
      Buffer.add_string buf
        (Printf.sprintf
           ", \"strategy\": %s, \"precompute_s\": %s, \"compile_latency_s\": \
            %s, \"pulse_duration_ns\": %s, \"gate_duration_ns\": %s, \
            \"pulse_speedup\": %s, \"cache_hits\": %d, \"degradations\": %d"
           (json_string i.strategy)
           (json_float i.precompute_s)
           (json_float i.compile_latency_s)
           (json_float i.pulse_duration_ns)
           (json_float i.gate_duration_ns)
           (json_float (i.gate_duration_ns /. i.pulse_duration_ns))
           i.cache_hits i.degradations));
    Buffer.add_string buf "}\n";
    output_string t.oc (Buffer.contents buf);
    t.written <- t.written + 1;
    if t.written mod t.flush_every = 0 then flush t.oc;
    (* Histograms are bounded (bucket tables, not event lists), so a
       thousand-iteration run adds nothing to the Obs event buffer. *)
    Obs.Metrics.observe "run.iteration_s" iter_s;
    Obs.Metrics.observe "run.energy" energy;
    match t.info with
    | Some i -> Obs.Metrics.observe "run.compile_latency_s" i.compile_latency_s
    | None -> ()
  end

let written t = t.written

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try flush t.oc with Sys_error _ -> ());
    close_out_noerr t.oc
  end

let path_from_env () =
  match Sys.getenv_opt "PQC_RUN_LOG" with
  | None -> None
  | Some s ->
    let s = String.trim s in
    if s = "" then None else Some s

let with_log ?info ~algo ~label ~path f =
  match path with
  | None -> f None
  | Some path ->
    let t = create ?info ~algo ~label ~path () in
    Fun.protect ~finally:(fun () -> close t) (fun () -> f (Some t))
