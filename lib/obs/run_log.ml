type compile_info = {
  strategy : string;
  precompute_s : float;
  compile_latency_s : float;
  pulse_duration_ns : float;
  gate_duration_ns : float;
  cache_hits : int;
  degradations : int;
}

type t = {
  oc : out_channel;
  algo : string;
  label : string;
  run_id : string option;
  info : compile_info option;
  flush_every : int;
  t_start : float;
  mutable t_last : float;
  mutable written : int;
  mutable closed : bool;
}

let json_string = Pqc_util.Jsonx.escape_string

(* JSON has no inf/nan tokens; render them as null so every line parses. *)
let json_float f = if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

let create ?run_id ?info ?(flush_every = 1) ~algo ~label ~path () =
  let oc = open_out path in
  let now = Obs.Clock.now () in
  (* The correlation id is captured once at creation: every record of
     one recorder belongs to one run, and the ambient context may have
     moved on by the time late records are written. *)
  let run_id =
    match run_id with Some _ as r -> r | None -> Obs.Ctx.current ()
  in
  { oc; algo; label; run_id; info; flush_every = max 1 flush_every;
    t_start = now; t_last = now; written = 0; closed = false }

let record t ~iteration ~energy =
  if not t.closed then begin
    let now = Obs.Clock.now () in
    let iter_s = now -. t.t_last in
    t.t_last <- now;
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"algo\": %s, \"label\": %s, \"seq\": %d, \"iteration\": %d, \
          \"energy\": %s, \"iteration_s\": %s, \"elapsed_s\": %s"
         (json_string t.algo) (json_string t.label) (t.written + 1) iteration
         (json_float energy) (json_float iter_s)
         (json_float (now -. t.t_start)));
    (match t.run_id with
    | None -> ()
    | Some rid ->
      Buffer.add_string buf
        (Printf.sprintf ", \"run_id\": %s" (json_string rid)));
    (match t.info with
    | None -> ()
    | Some i ->
      Buffer.add_string buf
        (Printf.sprintf
           ", \"strategy\": %s, \"precompute_s\": %s, \"compile_latency_s\": \
            %s, \"pulse_duration_ns\": %s, \"gate_duration_ns\": %s, \
            \"pulse_speedup\": %s, \"cache_hits\": %d, \"degradations\": %d"
           (json_string i.strategy)
           (json_float i.precompute_s)
           (json_float i.compile_latency_s)
           (json_float i.pulse_duration_ns)
           (json_float i.gate_duration_ns)
           (json_float (i.gate_duration_ns /. i.pulse_duration_ns))
           i.cache_hits i.degradations));
    Buffer.add_string buf "}\n";
    output_string t.oc (Buffer.contents buf);
    t.written <- t.written + 1;
    if t.written mod t.flush_every = 0 then flush t.oc;
    (* Histograms are bounded (bucket tables, not event lists), so a
       thousand-iteration run adds nothing to the Obs event buffer. *)
    Obs.Metrics.observe "run.iteration_s" iter_s;
    Obs.Metrics.observe "run.energy" energy;
    match t.info with
    | Some i -> Obs.Metrics.observe "run.compile_latency_s" i.compile_latency_s
    | None -> ()
  end

let written t = t.written

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try flush t.oc with Sys_error _ -> ());
    close_out_noerr t.oc
  end

let path_from_env () =
  match Sys.getenv_opt "PQC_RUN_LOG" with
  | None -> None
  | Some s ->
    let s = String.trim s in
    if s = "" then None else Some s

let with_log ?run_id ?info ~algo ~label ~path f =
  match path with
  | None -> f None
  | Some path ->
    let t = create ?run_id ?info ~algo ~label ~path () in
    Fun.protect ~finally:(fun () -> close t) (fun () -> f (Some t))

(* ------------------------------------------------------------------ *)
(* Tolerant reader.                                                    *)

type record = {
  r_algo : string;
  r_label : string;
  r_iteration : int;
  r_energy : float;
  r_elapsed_s : float;
  r_seq : int option;  (** [None] on pre-provenance records. *)
  r_run_id : string option;  (** [None] on pre-provenance records. *)
  r_strategy : string option;
}

let parse_record line =
  let module J = Pqc_util.Jsonx in
  let line = String.trim line in
  if line = "" then None
  else
    match J.parse line with
    | Error _ -> None
    | Ok j ->
      let str k = Option.bind (J.member k j) J.to_string in
      let int k = Option.bind (J.member k j) J.to_int in
      let flt k = Option.bind (J.member k j) J.to_float in
      (* Only the fields every format version has are required; run_id
         and seq are optional so pre-provenance logs still read. *)
      (match (str "algo", str "label", int "iteration", flt "energy") with
      | Some r_algo, Some r_label, Some r_iteration, Some r_energy ->
        Some
          { r_algo; r_label; r_iteration; r_energy;
            r_elapsed_s = Option.value ~default:Float.nan (flt "elapsed_s");
            r_seq = int "seq"; r_run_id = str "run_id";
            r_strategy = str "strategy" }
      | _ -> None)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let rec go acc =
    match input_line ic with
    | exception End_of_file -> List.rev acc
    | line -> (
      match parse_record line with
      | Some r -> go (r :: acc)
      | None -> go acc)
  in
  go []
