(** Per-iteration run records for variational loops (VQE / QAOA).

    The paper's central trade-off — compilation latency per variational
    iteration versus pulse duration — lives in the thousands-of-
    iterations regime, so this module records the iteration-level view:
    one JSONL line per objective evaluation, streamed straight to disk.
    The recorder holds no per-iteration state in memory (bounded memory
    on arbitrarily long runs) and never touches optimization results —
    recording on or off, the optimizer sees identical values.

    Each record carries the iteration index, the objective value, the
    wall-clock of that iteration, and — when the caller supplies a
    {!compile_info} — the compilation-strategy context the paper's
    latency table needs: strategy name, per-iteration compile latency,
    compiled pulse duration against the gate-based baseline, cache hits
    and degradations.  When {!Obs} tracing is enabled, every record
    also feeds the [run.iteration_s] and [run.energy] histograms (and
    [run.compile_latency_s] when compile context is present), so
    p50/p90/p99 of the per-iteration cost are available from
    {!Obs.Metrics} without re-reading the file.

    The [PQC_RUN_LOG] environment variable names the default output
    path used by the CLI entry points ({!path_from_env}). *)

type compile_info = {
  strategy : string;  (** Compilation strategy name, e.g. ["strict-partial"]. *)
  precompute_s : float;  (** One-off offline compilation work, seconds. *)
  compile_latency_s : float;
      (** Compilation work repeated every variational iteration, seconds
          — the quantity partial compilation attacks. *)
  pulse_duration_ns : float;  (** Compiled pulse duration. *)
  gate_duration_ns : float;  (** Gate-based baseline pulse duration. *)
  cache_hits : int;  (** Pulse-cache hits during the compile. *)
  degradations : int;  (** Fallbacks taken while compiling. *)
}
(** Compilation context attached verbatim to every record.  Plain
    strings and numbers so this library stays dependency-free; build it
    from a {!Pqc_core.Strategy.compiled} at the call site. *)

type t

val create :
  ?run_id:string ->
  ?info:compile_info ->
  ?flush_every:int ->
  algo:string ->
  label:string ->
  path:string ->
  unit ->
  t
(** Open [path] for writing (truncating) and return a recorder.
    [algo] and [label] (e.g. ["vqe"]/["lih"]) are stamped on every
    record.  [run_id] is the correlation id stamped on every record;
    it defaults to the {!Obs.Ctx} ambient at creation time (records
    carry no id when neither is present — the pre-provenance format).
    [flush_every] (default 1 — every record) bounds how many records
    may sit in the channel buffer; the stream is valid JSONL after
    every flush.  Raises [Sys_error] when the path cannot be opened —
    callers own the user-facing error. *)

val record : t -> iteration:int -> energy:float -> unit
(** Append one record.  [iteration] is the 1-based variational
    iteration (objective evaluation) index; [energy] is the objective
    value at that iteration (for QAOA, the expected cut).  Every record
    additionally carries a monotonic ["seq"] number (1-based, the
    recorder's write count) so log joins can detect truncation and
    order records without trusting timestamps.  No-op after {!close}. *)

val written : t -> int
(** Records appended so far. *)

val close : t -> unit
(** Flush and close the stream (idempotent). *)

val path_from_env : unit -> string option
(** The [PQC_RUN_LOG] path, if set and non-empty. *)

val with_log :
  ?run_id:string ->
  ?info:compile_info ->
  algo:string ->
  label:string ->
  path:string option ->
  (t option -> 'a) ->
  'a
(** [with_log ~algo ~label ~path f] runs [f (Some recorder)] with the
    recorder closed afterwards (even on exceptions), or [f None] when
    [path] is [None]. *)

(** {2 Tolerant reader}

    Reads logs written by any format version of this module: [run_id]
    and [seq] are absent from pre-provenance records and surface as
    [None].  Unparseable lines (torn tails from a crashed writer) are
    skipped, not fatal — a run log is evidence, and damaged evidence is
    still evidence. *)

type record = {
  r_algo : string;
  r_label : string;
  r_iteration : int;
  r_energy : float;
  r_elapsed_s : float;  (** [nan] when absent. *)
  r_seq : int option;  (** [None] on pre-provenance records. *)
  r_run_id : string option;  (** [None] on pre-provenance records. *)
  r_strategy : string option;  (** [None] without compile context. *)
}

val parse_record : string -> record option
(** One JSONL line as a record; [None] on damage or a non-record line. *)

val read_file : string -> record list
(** All parseable records of a JSONL file, in file order.  Raises
    [Sys_error] when the file cannot be opened. *)
