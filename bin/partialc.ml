(* partialc — compile variational benchmark circuits under the four
   compilation strategies and inspect the results.

   Subcommands:
     partialc compile --benchmark lih [--strategy flexible] [--numeric]
     partialc tables                      # Tables 1-3 benchmark stats
     partialc vqe --molecule h2           # end-to-end VQE
     partialc qaoa --nodes 6 --p 2        # end-to-end QAOA
     partialc grape --gate cx             # numeric GRAPE on one gate *)

module Rng = Pqc_util.Rng
module Table = Pqc_util.Table
module Param = Pqc_quantum.Param
module Gate = Pqc_quantum.Gate
module Circuit = Pqc_quantum.Circuit
module Gate_times = Pqc_pulse.Gate_times
module Hamiltonian = Pqc_grape.Hamiltonian
module Grape = Pqc_grape.Grape
open Pqc_core

(* Workload spec parsing (molecule names and "<kind><nodes>p<rounds>"
   QAOA specs) lives in Bench_matrix so the bench-matrix manifests and
   the CLI agree on exactly one spec language. *)
let benchmark_circuit name = Bench_matrix.circuit_of_spec name

let theta_for seed c =
  let rng = Rng.create seed in
  let n = Circuit.n_params c in
  Array.init n (fun _ -> Rng.uniform rng ~lo:0.0 ~hi:(2.0 *. Float.pi))

(* --- compile --- *)

let load_qasm path =
  try
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Pqc_quantum.Qasm.of_qasm s with
    | c -> Ok c
    | exception Pqc_quantum.Qasm.Parse_error { line; col; message } ->
      Error (Printf.sprintf "%s:%d:%d: %s" path line col message)
  with Sys_error e -> Error e

(* Scope tracing to the wrapped action: enable, run, write the Chrome
   trace atomically, and print the span/counter and histogram summary
   tables.  An unwritable trace path is a usage problem, not a crash:
   one line on stderr, exit 2. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    let module Obs = Pqc_obs.Obs in
    Obs.reset ();
    Obs.enable ();
    let code = f () in
    (match Obs.write ~path () with
    | () ->
      Printf.printf "wrote trace %s (%d events)\n" path
        (List.length (Obs.events ()));
      print_string (Obs.summary ());
      print_newline ();
      if Obs.Metrics.names () <> [] then begin
        print_string (Obs.Metrics.summary ());
        print_newline ()
      end;
      code
    | exception Sys_error e ->
      Printf.eprintf "partialc: cannot write trace: %s\n" e;
      2)

let run_compile file benchmark strategy numeric seed trace =
  let circuit =
    match file with
    | Some path -> load_qasm path
    | None -> benchmark_circuit benchmark
  in
  let label = match file with Some p -> p | None -> benchmark in
  match circuit with
  | Error e ->
    prerr_endline e;
    1
  | Ok circuit ->
    with_trace trace @@ fun () ->
    let prepared = Compiler.prepare circuit in
    let theta = theta_for seed prepared in
    let engine = if numeric then Engine.numeric () else Engine.model in
    let strategies =
      match strategy with
      | None -> Compiler.all_strategies
      | Some s -> [ s ]
    in
    Printf.printf "%s: %d qubits, %d gates, %d parameters (seed %d)\n" label
      (Circuit.n_qubits prepared) (Circuit.length prepared)
      (List.length (Circuit.depends prepared))
      seed;
    let baseline = Compiler.gate_based prepared ~theta in
    let table =
      Table.create [ "strategy"; "pulse (ns)"; "speedup"; "latency/iter"; "precompute" ]
    in
    let degraded = ref [] in
    List.iter
      (fun s ->
        let r = Compiler.compile ~engine s prepared ~theta in
        if Strategy.degraded r then
          degraded := (Compiler.strategy_name s, r) :: !degraded;
        Table.add_row table
          [ r.Strategy.strategy;
            Table.cell_f r.Strategy.duration_ns;
            Table.cell_x (Strategy.speedup ~baseline r);
            Printf.sprintf "%.2f s" r.Strategy.per_iteration.Engine.seconds;
            Printf.sprintf "%.2f s" r.Strategy.precompute.Engine.seconds ])
      strategies;
    Table.print table;
    List.iter
      (fun (requested, r) ->
        Printf.printf "degraded [%s -> %s]: %s\n" requested r.Strategy.strategy
          (Strategy.degradation_report r))
      (List.rev !degraded);
    (* Save freshly optimized block pulses when PQC_PULSE_CACHE is set. *)
    Engine.persist engine;
    0

(* --- tables --- *)

let run_tables () =
  print_endline "Table 1: gate pulse durations (ns)";
  let t1 = Table.create [ "gate"; "pulse (ns)" ] in
  List.iter (fun (g, d) -> Table.add_row t1 [ g; Table.cell_f d ]) Gate_times.table;
  Table.print t1;
  print_newline ();
  print_endline "Table 2: VQE-UCCSD benchmarks";
  let t2 = Table.create [ "molecule"; "qubits"; "params"; "gate-based (ns)" ] in
  List.iter
    (fun m ->
      let c = Compiler.prepare (Pqc_vqe.Uccsd.ansatz m) in
      Table.add_row t2
        [ m.Pqc_vqe.Molecule.name;
          string_of_int m.Pqc_vqe.Molecule.n_qubits;
          string_of_int (Pqc_vqe.Molecule.n_params m);
          Table.cell_f (Gate_times.circuit_duration c) ])
    Pqc_vqe.Molecule.all;
  Table.print t2;
  0

(* --- run recording (vqe / qaoa) --- *)

(* A run log's per-iteration records carry compile-side context (compile
   latency, pulse vs gate-based duration) alongside the optimizer-side
   energy, so one JSONL file reproduces the paper's latency-vs-duration
   tradeoff.  The model engine keeps recording cheap. *)
let compile_info_for strategy circuit =
  let prepared = Compiler.prepare circuit in
  let theta = theta_for 42 prepared in
  let r = Compiler.compile ~engine:Engine.model strategy prepared ~theta in
  let baseline = Compiler.gate_based prepared ~theta in
  { Pqc_obs.Run_log.strategy = r.Strategy.strategy;
    precompute_s = r.Strategy.precompute.Engine.seconds;
    compile_latency_s = r.Strategy.per_iteration.Engine.seconds;
    pulse_duration_ns = r.Strategy.duration_ns;
    gate_duration_ns = baseline.Strategy.duration_ns;
    cache_hits = r.Strategy.pool.Engine.cache_hits;
    degradations = List.length r.Strategy.degradations }

(* [f] receives the recorder (or None when no path was given).  An
   unwritable path is a usage problem: one line on stderr, exit 2.  The
   whole run — the compile-context probe and every recorded iteration —
   shares one minted run_id, so the JSONL joins against the traces and
   cache entries the embedded compiles produce. *)
let with_run_log run_log ~strategy ~algo ~label ~circuit f =
  match run_log with
  | None -> f None
  | Some path -> (
    Pqc_obs.Obs.Ctx.with_ctx
      (Some (Pqc_obs.Obs.Ctx.mint (algo ^ ":" ^ label)))
    @@ fun () ->
    let info = compile_info_for strategy circuit in
    match Pqc_obs.Run_log.create ~info ~algo ~label ~path () with
    | exception Sys_error e ->
      Printf.eprintf "partialc: cannot write run log: %s\n" e;
      2
    | r ->
      Fun.protect
        ~finally:(fun () -> Pqc_obs.Run_log.close r)
        (fun () ->
          let code = f (Some r) in
          Printf.printf "wrote run log %s (%d records)\n" path
            (Pqc_obs.Run_log.written r);
          code))

(* --- vqe --- *)

let run_vqe molecule strategy run_log =
  match Pqc_vqe.Molecule.find molecule with
  | None ->
    Printf.eprintf "unknown molecule %S\n" molecule;
    1
  | Some m when m.Pqc_vqe.Molecule.name <> "H2" ->
    (* Only H2 has a chemistry-accurate Hamiltonian (DESIGN.md); wider
       molecules run against a seeded synthetic operator. *)
    let h = Pqc_vqe.Chemistry.synthetic ~seed:7 ~n_qubits:m.Pqc_vqe.Molecule.n_qubits in
    let ansatz = Pqc_vqe.Uccsd.ansatz m in
    with_run_log run_log ~strategy ~algo:"vqe" ~label:m.Pqc_vqe.Molecule.name
      ~circuit:ansatz
    @@ fun recorder ->
    let r = Pqc_vqe.Vqe.run ~max_evals:400 ?recorder ~hamiltonian:h ~ansatz () in
    Printf.printf "%s (synthetic Hamiltonian): E = %.6f in %d iterations\n"
      m.Pqc_vqe.Molecule.name r.energy r.evaluations;
    0
  | Some m ->
    let prep = Circuit.of_gates 2 [ (Gate.X, [ 0 ]) ] in
    let ansatz = Circuit.concat prep (Pqc_vqe.Uccsd.ansatz m) in
    with_run_log run_log ~strategy ~algo:"vqe" ~label:m.Pqc_vqe.Molecule.name
      ~circuit:ansatz
    @@ fun recorder ->
    let r = Pqc_vqe.Vqe.run ?recorder ~hamiltonian:Pqc_vqe.Chemistry.h2 ~ansatz () in
    Printf.printf "H2: E = %.6f Ha (exact %.6f) in %d iterations\n" r.energy
      Pqc_vqe.Chemistry.h2_exact_energy r.evaluations;
    0

(* --- qaoa --- *)

let run_qaoa nodes p seed run_log =
  let rng = Rng.create seed in
  let graph = Pqc_qaoa.Graph.random_regular rng ~degree:3 nodes in
  let label = Printf.sprintf "3reg%dp%d" nodes p in
  with_run_log run_log ~strategy:Compiler.Strict_partial ~algo:"qaoa" ~label
    ~circuit:(Pqc_qaoa.Qaoa.circuit graph ~p)
  @@ fun recorder ->
  let o = Pqc_qaoa.Qaoa.optimize ~seed ?recorder graph ~p in
  Printf.printf "3-regular %d-node MAXCUT, p = %d: cut %.2f / %d (ratio %.3f) in %d iterations\n"
    nodes p o.expected_cut o.optimum o.approximation_ratio o.evaluations;
  0

(* --- grape --- *)

let run_grape gate =
  let target =
    match String.lowercase_ascii gate with
    | "x" -> Some (1, Circuit.of_gates 1 [ (Gate.X, [ 0 ]) ], 5.0)
    | "h" -> Some (1, Circuit.of_gates 1 [ (Gate.H, [ 0 ]) ], 4.0)
    | "rz" -> Some (1, Circuit.of_gates 1 [ (Gate.Rz (Param.const Float.pi), [ 0 ]) ], 2.0)
    | "cx" -> Some (2, Circuit.of_gates 2 [ (Gate.CX, [ 0; 1 ]) ], 8.0)
    | "swap" -> Some (2, Circuit.of_gates 2 [ (Gate.Swap, [ 0; 1 ]) ], 10.0)
    | _ -> None
  in
  match target with
  | None ->
    Printf.eprintf "unknown gate %S (x, h, rz, cx, swap)\n" gate;
    1
  | Some (n, circuit, upper) ->
    let sys = Hamiltonian.gmon n in
    let settings =
      { Grape.fast_settings with Grape.dt = 0.1; max_iters = 400;
        target_fidelity = 0.999 }
    in
    (match
       Grape.minimal_time ~settings ~upper_bound:upper sys
         ~target:(Circuit.unitary circuit)
     with
    | Some s ->
      Printf.printf
        "%s: minimal pulse %.2f ns (lookup %.1f ns), fidelity %.4f, %d GRAPE \
         iterations over %d probes\n"
        gate s.minimal.total_time
        (Gate_times.circuit_duration circuit)
        s.minimal.fidelity s.grape_iterations_total (List.length s.probes);
      0
    | None ->
      Printf.printf "%s: did not converge\n" gate;
      1)

(* --- export --- *)

let run_export benchmark strategy out seed =
  match benchmark_circuit benchmark with
  | Error e -> prerr_endline e; 1
  | Ok circuit ->
    let prepared = Compiler.prepare circuit in
    let theta = theta_for seed prepared in
    let r = Compiler.compile ~engine:Engine.model strategy prepared ~theta in
    let qasm = Pqc_quantum.Qasm.to_qasm ~theta prepared in
    let json = Pqc_pulse.Pulse.to_json r.Strategy.pulse in
    let write path contents =
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Printf.printf "wrote %s\n" path
    in
    write (out ^ ".qasm") qasm;
    write (out ^ ".pulse.json") json;
    Printf.printf "%s under %s: %.1f ns over %d segments\n" benchmark
      r.Strategy.strategy r.Strategy.duration_ns
      (Pqc_pulse.Pulse.length r.Strategy.pulse);
    0

(* --- qasm --- *)

let run_qasm_file path seed =
  match
    (try
       let ic = open_in path in
       let n = in_channel_length ic in
       let s = really_input_string ic n in
       close_in ic;
       Ok s
     with Sys_error e -> Error e)
  with
  | Error e -> prerr_endline e; 1
  | Ok source ->
    (match Pqc_quantum.Qasm.of_qasm source with
    | exception Pqc_quantum.Qasm.Parse_error { line; col; message } ->
      Printf.eprintf "%s:%d:%d: %s\n" path line col message;
      1
    | circuit ->
      let prepared = Compiler.prepare circuit in
      let theta = theta_for seed prepared in
      Printf.printf "%s: %d qubits, %d gates\n" path
        (Circuit.n_qubits prepared) (Circuit.length prepared);
      let baseline = Compiler.gate_based prepared ~theta in
      let t = Table.create [ "strategy"; "pulse (ns)"; "speedup" ] in
      List.iter
        (fun s ->
          let r = Compiler.compile ~engine:Engine.model s prepared ~theta in
          Table.add_row t
            [ r.Strategy.strategy; Table.cell_f r.Strategy.duration_ns;
              Table.cell_x (Strategy.speedup ~baseline r) ])
        Compiler.all_strategies;
      Table.print t;
      0)

(* --- slices --- *)

let run_slices benchmark =
  match benchmark_circuit benchmark with
  | Error e -> prerr_endline e; 1
  | Ok circuit ->
    let module Slice = Pqc_transpile.Slice in
    let prepared = Compiler.prepare circuit in
    let show title slices =
      Printf.printf "%s: %d slices\n" title (List.length slices);
      List.iteri
        (fun k (s : Slice.slice) ->
          match s.Slice.var with
          | Some v ->
            Printf.printf "  %3d  theta_%-3d %d gate\n" k v
              (Circuit.length s.Slice.circuit)
          | None ->
            Printf.printf "  %3d  fixed     %d gates on qubits {%s}\n" k
              (Circuit.length s.Slice.circuit)
              (String.concat ","
                 (List.map string_of_int
                    (List.filter
                       (Circuit.qubit_used s.Slice.circuit)
                       (List.init (Circuit.n_qubits prepared) Fun.id)))))
        slices
    in
    Printf.printf "%s: %d qubits, %d gates, monotone=%b\n\n" benchmark
      (Circuit.n_qubits prepared) (Circuit.length prepared)
      (Slice.is_monotone prepared);
    show "strict (regions)" (Slice.strict prepared);
    print_newline ();
    show "flexible (single-parameter)" (Slice.flexible prepared);
    0

(* --- lint / analyze --- *)

let print_report ~json report =
  if json then print_endline (Pqc_analysis.Runner.to_json report)
  else print_endline (Pqc_analysis.Runner.to_string report)

(* CLI --disable/--promote flags first, then PQC_LINT_RULES entries: the
   first binding for a rule id wins, so the command line takes precedence
   over the environment. *)
let build_overrides ~disable ~promote =
  let cli =
    List.map (fun id -> id ^ "=off") disable @ promote
  in
  let env = Option.value ~default:"" (Sys.getenv_opt "PQC_LINT_RULES") in
  Pqc_analysis.Runner.parse_overrides (String.concat "," (cli @ [ env ]))

let parse_error_report (line, col, message) =
  let module A = Pqc_analysis in
  (* Syntax errors are reported through the same diagnostic channel as
     analysis findings, so --json consumers see one format. *)
  let d =
    A.Diagnostic.error ~rule:"PQC000" ~span:(A.Diagnostic.point line)
      ~hint:"fix the syntax error before analysis can run"
      (Printf.sprintf "parse error at %d:%d: %s" line col message)
  in
  { A.Runner.diagnostics = [ d ]; errors = 1; warnings = 0; infos = 0;
    suppressed = 0; rules_run = []; skipped_structural = false }

let run_lint file benchmark cache max_width json list_rules disable promote =
  let module A = Pqc_analysis in
  if list_rules then begin
    List.iter
      (fun (id, title, doc) -> Printf.printf "%s  %-20s %s\n" id title doc)
      (A.Rules.catalog ());
    0
  end
  else begin
    let usage msg =
      prerr_endline ("lint: " ^ msg);
      2
    in
    match build_overrides ~disable ~promote with
    | Error e -> usage e
    | Ok overrides -> (
      match (file, benchmark) with
      | Some _, Some _ -> usage "pass either FILE or --benchmark, not both"
      | None, None when cache = None ->
        usage "nothing to lint (pass FILE, --benchmark or --cache)"
      | _ -> (
        let circuit =
          match (file, benchmark) with
          | Some f, _ -> (
            try
              let ic = open_in f in
              let s = really_input_string ic (in_channel_length ic) in
              close_in ic;
              match Pqc_quantum.Qasm.of_qasm s with
              | c -> Ok (Some c)
              | exception Pqc_quantum.Qasm.Parse_error { line; col; message } ->
                Error (`Parse (line, col, message))
            with Sys_error e -> Error (`Io e))
          | None, Some bench -> (
            match benchmark_circuit bench with
            | Ok c -> Ok (Some c)
            | Error e -> Error (`Io e))
          | None, None -> Ok None
        in
        match circuit with
        | Error (`Io e) -> usage e
        | Error (`Parse pe) ->
          print_report ~json (parse_error_report pe);
          1
        | Ok circuit ->
          let c =
            match circuit with
            | Some c -> c
            | None -> Circuit.of_gates 1 [] (* cache-only audit *)
          in
          let report =
            A.Runner.analyze ~overrides ?cache_file:cache ~max_width c
          in
          print_report ~json report;
          A.Runner.exit_code report))
  end

(* analyze = lint + dataflow/cost advisory + optional SARIF export.  The
   exit code follows the lint contract: 0 clean, 1 findings (errors),
   2 usage or unreadable input. *)
let run_analyze file benchmark cache max_width json sarif disable promote
    latency_budget =
  let module A = Pqc_analysis in
  let usage msg =
    prerr_endline ("analyze: " ^ msg);
    2
  in
  let write_sarif report =
    match sarif with
    | None -> Ok ()
    | Some path -> (
      let uri = match (file, benchmark) with
        | Some f, _ -> f
        | None, Some b -> "benchmark:" ^ b
        | None, None -> "unknown"
      in
      try
        let oc = open_out path in
        output_string oc (A.Sarif.of_report ~uri report);
        output_char oc '\n';
        close_out oc;
        Ok ()
      with Sys_error e -> Error e)
  in
  match build_overrides ~disable ~promote with
  | Error e -> usage e
  | Ok overrides -> (
    match (file, benchmark) with
    | Some _, Some _ -> usage "pass either FILE or --benchmark, not both"
    | None, None -> usage "nothing to analyze (pass FILE or --benchmark)"
    | _ -> (
      let circuit =
        match (file, benchmark) with
        | Some f, _ -> (
          try
            let ic = open_in f in
            let s = really_input_string ic (in_channel_length ic) in
            close_in ic;
            match Pqc_quantum.Qasm.of_qasm s with
            | c -> Ok c
            | exception Pqc_quantum.Qasm.Parse_error { line; col; message } ->
              Error (`Parse (line, col, message))
          with Sys_error e -> Error (`Io e))
        | None, Some bench -> (
          match benchmark_circuit bench with
          | Ok c -> Ok c
          | Error e -> Error (`Io e))
        | None, None -> assert false
      in
      match circuit with
      | Error (`Io e) -> usage e
      | Error (`Parse pe) -> (
        let report = parse_error_report pe in
        print_report ~json report;
        match write_sarif report with
        | Ok () -> 1
        | Error e -> usage ("cannot write SARIF: " ^ e))
      | Ok c -> (
        let report =
          A.Runner.analyze ~overrides ?cache_file:cache ~max_width c
        in
        let advice =
          A.Runner.advise ~max_width ~latency_budget_s:latency_budget c
        in
        if json then
          Printf.printf "{\"report\":%s,\"advice\":%s}\n"
            (A.Runner.to_json report)
            (A.Cost.advice_to_json advice)
        else begin
          print_report ~json:false report;
          print_newline ();
          print_endline (A.Cost.advice_to_string advice)
        end;
        match write_sarif report with
        | Ok () ->
          (match sarif with
          | Some path when not json -> Printf.printf "wrote SARIF %s\n" path
          | _ -> ());
          A.Runner.exit_code report
        | Error e -> usage ("cannot write SARIF: " ^ e))))

(* --- bench diff --- *)

let run_bench_diff old_path new_path threshold time_threshold =
  match Bench_report.read ~path:old_path with
  | Error e ->
    Printf.eprintf "partialc: %s\n" e;
    2
  | Ok old_report -> (
    match Bench_report.read ~path:new_path with
    | Error e ->
      Printf.eprintf "partialc: %s\n" e;
      2
    | Ok new_report ->
      let d =
        Bench_diff.diff ~threshold_pct:threshold
          ?time_threshold_pct:time_threshold ~old_report ~new_report ()
      in
      print_string (Bench_diff.render d);
      if d.Bench_diff.regressions = [] then 0 else 1)

(* --- bench matrix / rollup --- *)

let run_bench_matrix manifest_path out_dir workers dry_run =
  match Bench_matrix.load_manifest ~path:manifest_path with
  | Error e ->
    Printf.eprintf "partialc: %s\n" e;
    2
  | Ok manifest ->
    if dry_run then begin
      let cells = Bench_matrix.expand manifest in
      List.iter
        (fun c -> print_endline c.Bench_matrix.id)
        cells;
      Printf.printf "%d cells\n" (List.length cells);
      0
    end
    else begin
      let outcomes = Bench_matrix.run ?workers manifest ~out_dir in
      let failed =
        List.filter
          (fun o -> Result.is_error o.Bench_matrix.status)
          outcomes
      in
      List.iter
        (fun o ->
          match o.Bench_matrix.status with
          | Ok () -> Printf.printf "ok   %s\n" o.Bench_matrix.cell.Bench_matrix.id
          | Error e ->
            Printf.printf "FAIL %s: %s\n" o.Bench_matrix.cell.Bench_matrix.id e)
        outcomes;
      Printf.printf "%d/%d cells ok; results under %s\n"
        (List.length outcomes - List.length failed)
        (List.length outcomes) out_dir;
      if failed = [] then 0 else 1
    end

let run_bench_rollup dir out =
  match Bench_rollup.of_results_dir ~dir with
  | Error e ->
    Printf.eprintf "partialc: %s\n" e;
    2
  | Ok rollup ->
    let out = Option.value out ~default:(Filename.concat dir "rollup.json") in
    Bench_rollup.write ~path:out rollup;
    print_string (Bench_rollup.render rollup);
    Printf.printf "wrote %s\n" out;
    if rollup.Bench_rollup.missing_cells = [] then 0 else 1

(* --- obs: exposition tooling --- *)

let read_whole_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Registry files for [obs export]: a path is either one metrics.reg
   file or a matrix results directory holding <cell>/metrics.reg files
   (the layout [bench matrix] writes). *)
let registry_files path =
  if Sys.is_directory path then
    let direct = Filename.concat path "metrics.reg" in
    let per_cell =
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.filter_map (fun entry ->
             let p = Filename.concat path entry in
             let reg = Filename.concat p "metrics.reg" in
             if Sys.is_directory p && Sys.file_exists reg then Some reg
             else None)
    in
    if Sys.file_exists direct then direct :: per_cell else per_cell
  else [ path ]

let write_or_stdout out contents =
  match out with
  | None -> print_string contents
  | Some path ->
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        output_string oc contents);
    Printf.printf "wrote %s\n" path

let run_obs_export inputs out =
  let module Obs = Pqc_obs.Obs in
  let files = List.concat_map registry_files inputs in
  match files with
  | [] ->
    Printf.eprintf "partialc: no metrics.reg files under %s\n"
      (String.concat " " inputs);
    2
  | files -> (
    match
      let agg = Obs.Metrics.Agg.create () in
      List.iter
        (fun f ->
          String.split_on_char '\n' (read_whole_file f)
          |> List.iter (fun line ->
                 if String.trim line <> "" then Obs.Metrics.Agg.absorb agg line))
        files;
      agg
    with
    | exception Sys_error e ->
      Printf.eprintf "partialc: %s\n" e;
      2
    | agg ->
      write_or_stdout out (Obs.Metrics.Agg.prometheus agg);
      0)

let run_obs_flamegraph trace mode out =
  match read_whole_file trace with
  | exception Sys_error e ->
    Printf.eprintf "partialc: %s\n" e;
    2
  | doc -> (
    match Pqc_obs.Obs.flamegraph_of_chrome ~mode doc with
    | Error e ->
      Printf.eprintf "partialc: %s: %s\n" trace e;
      2
    | Ok folded ->
      write_or_stdout out folded;
      0)

let show_record (r : Pqc_obs.Run_log.record) =
  Printf.printf "%-12s seq=%-5s iter=%-5d energy=% .6g elapsed=%.3fs %s/%s\n"
    (Option.value ~default:"-" r.r_run_id)
    (match r.r_seq with Some s -> string_of_int s | None -> "-")
    r.r_iteration r.r_energy r.r_elapsed_s r.r_algo r.r_label

let run_obs_tail path run_id last =
  match Pqc_obs.Run_log.read_file path with
  | exception Sys_error e ->
    Printf.eprintf "partialc: %s\n" e;
    2
  | records ->
    let records =
      match run_id with
      | None -> records
      | Some rid ->
        List.filter
          (fun (r : Pqc_obs.Run_log.record) -> r.r_run_id = Some rid)
          records
    in
    let n = List.length records in
    let tail =
      if n <= last then records
      else List.filteri (fun i _ -> i >= n - last) records
    in
    List.iter show_record tail;
    Printf.printf "%d of %d records\n" (List.length tail) n;
    0

(* Join: group records from several logs by run_id, so one correlation
   id can be followed across files written by different processes. *)
let run_obs_join paths run_id =
  match List.concat_map Pqc_obs.Run_log.read_file paths with
  | exception Sys_error e ->
    Printf.eprintf "partialc: %s\n" e;
    2
  | records -> (
    match run_id with
    | Some rid ->
      let mine =
        List.filter
          (fun (r : Pqc_obs.Run_log.record) -> r.r_run_id = Some rid)
          records
      in
      let mine =
        List.stable_sort
          (fun (a : Pqc_obs.Run_log.record) (b : Pqc_obs.Run_log.record) ->
            compare a.r_seq b.r_seq)
          mine
      in
      List.iter show_record mine;
      Printf.printf "%d records for run %s\n" (List.length mine) rid;
      if mine = [] then 1 else 0
    | None ->
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (r : Pqc_obs.Run_log.record) ->
          let key = Option.value ~default:"-" r.r_run_id in
          let count, last = try Hashtbl.find tbl key with Not_found -> (0, r) in
          let last =
            if compare r.r_seq last.Pqc_obs.Run_log.r_seq >= 0 then r else last
          in
          Hashtbl.replace tbl key (count + 1, last))
        records;
      let rows =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let t = Table.create [ "run_id"; "records"; "algo/label"; "last energy" ] in
      List.iter
        (fun (rid, (count, (last : Pqc_obs.Run_log.record))) ->
          Table.add_row t
            [ rid; string_of_int count;
              last.r_algo ^ "/" ^ last.r_label;
              Printf.sprintf "%.6g" last.r_energy ])
        rows;
      Table.print t;
      0)

(* --- cmdliner plumbing --- *)

open Cmdliner

let strategy_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "gate" | "gate-based" -> Ok (Some Compiler.Gate_based)
    | "strict" | "strict-partial" -> Ok (Some Compiler.Strict_partial)
    | "flexible" | "flexible-partial" -> Ok (Some Compiler.Flexible_partial)
    | "grape" | "full-grape" -> Ok (Some Compiler.Full_grape)
    | "all" -> Ok None
    | _ -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print fmt = function
    | None -> Format.pp_print_string fmt "all"
    | Some s -> Format.pp_print_string fmt (Compiler.strategy_name s)
  in
  Arg.conv (parse, print)

let strategy_one_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "gate" | "gate-based" -> Ok Compiler.Gate_based
    | "strict" | "strict-partial" -> Ok Compiler.Strict_partial
    | "flexible" | "flexible-partial" -> Ok Compiler.Flexible_partial
    | "grape" | "full-grape" -> Ok Compiler.Full_grape
    | _ -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print fmt s = Format.pp_print_string fmt (Compiler.strategy_name s) in
  Arg.conv (parse, print)

let run_log_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "run-log" ] ~docv:"RUN.jsonl"
        ~env:(Cmd.Env.info "PQC_RUN_LOG")
        ~doc:
          "Stream one JSON line per variational iteration (iteration \
           index, energy, wall-clock, compile latency, pulse vs \
           gate-based duration) to $(docv).")

let compile_cmd =
  let benchmark =
    Arg.(value & opt string "lih" & info [ "benchmark"; "b" ] ~doc:"Benchmark circuit.")
  in
  let strategy =
    Arg.(value & opt strategy_conv None & info [ "strategy"; "s" ] ~doc:"Strategy or 'all'.")
  in
  let numeric =
    Arg.(value & flag & info [ "numeric" ] ~doc:"Use the real GRAPE engine (slow).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Parametrization seed.") in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"OUT.json"
          ~doc:
            "Record compilation telemetry and write a Chrome trace-event \
             JSON file (open in chrome://tracing or Perfetto). A span/counter \
             summary table is printed after the compile.")
  in
  let file =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Optional OpenQASM 2.0 file to compile instead of a named benchmark.")
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a benchmark under the four strategies")
    Term.(const run_compile $ file $ benchmark $ strategy $ numeric $ seed $ trace)

let tables_cmd =
  Cmd.v (Cmd.info "tables" ~doc:"Print the Table 1/2 benchmark statistics")
    Term.(const run_tables $ const ())

let vqe_cmd =
  let molecule =
    Arg.(value & opt string "h2" & info [ "molecule"; "m" ] ~doc:"Molecule name.")
  in
  let strategy =
    Arg.(value & opt strategy_one_conv Compiler.Strict_partial
        & info [ "strategy"; "s" ]
            ~doc:"Strategy used for the run log's compile context.")
  in
  Cmd.v (Cmd.info "vqe" ~doc:"Run end-to-end VQE")
    Term.(const run_vqe $ molecule $ strategy $ run_log_arg)

let qaoa_cmd =
  let nodes = Arg.(value & opt int 6 & info [ "nodes"; "n" ] ~doc:"Graph nodes.") in
  let p = Arg.(value & opt int 2 & info [ "p" ] ~doc:"QAOA rounds.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Graph/start seed.") in
  Cmd.v (Cmd.info "qaoa" ~doc:"Run end-to-end QAOA MAXCUT")
    Term.(const run_qaoa $ nodes $ p $ seed $ run_log_arg)

let grape_cmd =
  let gate = Arg.(value & opt string "h" & info [ "gate"; "g" ] ~doc:"Gate name.") in
  Cmd.v (Cmd.info "grape" ~doc:"Numeric GRAPE minimal-time search for one gate")
    Term.(const run_grape $ gate)

let export_cmd =
  let benchmark =
    Arg.(value & opt string "h2" & info [ "benchmark"; "b" ] ~doc:"Benchmark circuit.")
  in
  let strategy =
    Arg.(value & opt strategy_one_conv Compiler.Strict_partial
        & info [ "strategy"; "s" ] ~doc:"Strategy to export.")
  in
  let out =
    Arg.(value & opt string "compiled" & info [ "out"; "o" ] ~doc:"Output prefix.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Parametrization seed.") in
  Cmd.v
    (Cmd.info "export" ~doc:"Export a compiled benchmark as OpenQASM + pulse JSON")
    Term.(const run_export $ benchmark $ strategy $ out $ seed)

let qasm_cmd =
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Parametrization seed.") in
  Cmd.v (Cmd.info "qasm" ~doc:"Compile an external OpenQASM 2.0 file")
    Term.(const run_qasm_file $ path $ seed)

let disable_arg =
  Arg.(value & opt_all string []
      & info [ "disable" ] ~docv:"RULE"
          ~doc:
            "Suppress a rule's findings (repeatable). Suppressed findings \
             are counted in the report's $(b,suppressed) field. Also \
             settable via $(b,PQC_LINT_RULES) (e.g. \
             PQC040=off,PQC030=error); command-line flags win.")

let promote_arg =
  Arg.(value & opt_all string []
      & info [ "promote" ] ~docv:"RULE=LEVEL"
          ~doc:
            "Override a rule's severity, e.g. $(b,PQC030=error) or \
             $(b,PQC020=info) (repeatable).")

let lint_cmd =
  let file =
    Arg.(value & pos 0 (some string) None
        & info [] ~docv:"FILE" ~doc:"OpenQASM 2.0 file to lint.")
  in
  let benchmark =
    Arg.(value & opt (some string) None
        & info [ "benchmark"; "b" ] ~doc:"Benchmark circuit to lint.")
  in
  let cache =
    Arg.(value & opt (some string) None
        & info [ "cache" ] ~doc:"Pulse-cache file to audit.")
  in
  let max_width =
    Arg.(value & opt int 4 & info [ "max-width" ] ~doc:"Blocking budget.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
  in
  let rules =
    Arg.(value & flag & info [ "rules" ] ~doc:"List the rule catalog and exit.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a circuit before compilation (exit 0 clean, 1 \
          errors, 2 usage)")
    Term.(const run_lint $ file $ benchmark $ cache $ max_width $ json $ rules
          $ disable_arg $ promote_arg)

let analyze_cmd =
  let file =
    Arg.(value & pos 0 (some string) None
        & info [] ~docv:"FILE" ~doc:"OpenQASM 2.0 file to analyze.")
  in
  let benchmark =
    Arg.(value & opt (some string) None
        & info [ "benchmark"; "b" ] ~doc:"Benchmark circuit to analyze.")
  in
  let cache =
    Arg.(value & opt (some string) None
        & info [ "cache" ] ~doc:"Pulse-cache file to audit alongside.")
  in
  let max_width =
    Arg.(value & opt int 4 & info [ "max-width" ] ~doc:"Blocking budget.")
  in
  let json =
    Arg.(value & flag
        & info [ "json" ]
            ~doc:"One JSON object with $(b,report) and $(b,advice) keys.")
  in
  let sarif =
    Arg.(value & opt (some string) None
        & info [ "sarif" ] ~docv:"OUT.sarif"
            ~doc:"Also write the report as a SARIF 2.1.0 log to $(docv).")
  in
  let latency_budget =
    Arg.(value & opt float 1.0
        & info [ "latency-budget" ] ~docv:"SECONDS"
            ~doc:
              "Per-variational-iteration compile-latency budget the \
               strategy advisor must respect.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Lint plus dataflow/cost analysis: per-strategy pulse and latency \
          predictions, a strategy recommendation, per-block gate-vs-pulse \
          decisions, and optional SARIF export (exit 0 clean, 1 findings, \
          2 usage)")
    Term.(const run_analyze $ file $ benchmark $ cache $ max_width $ json
          $ sarif $ disable_arg $ promote_arg $ latency_budget)

let bench_cmd =
  let diff_cmd =
    let old_path =
      Arg.(required & pos 0 (some string) None
          & info [] ~docv:"OLD.json" ~doc:"Baseline bench report.")
    in
    let new_path =
      Arg.(required & pos 1 (some string) None
          & info [] ~docv:"NEW.json" ~doc:"Candidate bench report.")
    in
    let threshold =
      Arg.(value & opt float 20.
          & info [ "threshold" ] ~docv:"PCT"
              ~env:(Cmd.Env.info "PQC_BENCH_THRESHOLD")
              ~doc:
                "Fail when pulse duration grows by more than $(docv) \
                 percent.")
    in
    let time_threshold =
      Arg.(value & opt (some float) None
          & info [ "time-threshold" ] ~docv:"PCT"
              ~doc:
                "Also fail when parallel wall-clock grows by more than \
                 $(docv) percent (off by default: wall-clock is noisy).")
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Compare two bench reports (exit 0 clean, 1 regression, 2 \
            unreadable input)")
      Term.(const run_bench_diff $ old_path $ new_path $ threshold
            $ time_threshold)
  in
  let matrix_cmd =
    let manifest =
      Arg.(required & pos 0 (some string) None
          & info [] ~docv:"MANIFEST.json"
              ~doc:"Workload-matrix manifest (see bench/workloads/).")
    in
    let out_dir =
      Arg.(value & opt string "matrix-out"
          & info [ "out"; "o" ] ~docv:"DIR"
              ~doc:"Results directory (per-cell reports + cells.json).")
    in
    let workers =
      Arg.(value & opt (some int) None
          & info [ "workers"; "j" ] ~docv:"N"
              ~env:(Cmd.Env.info "PQC_WORKERS")
              ~doc:"Driver processes executing cells (cells' own worker \
                    counts come from the manifest).")
    in
    let dry_run =
      Arg.(value & flag
          & info [ "dry-run" ]
              ~doc:"Print the expanded cell ids and exit without running.")
    in
    Cmd.v
      (Cmd.info "matrix"
         ~doc:
           "Expand and execute a workload-matrix manifest (exit 0 all \
            cells ok, 1 cell failure or pulse mismatch, 2 unreadable or \
            invalid manifest)")
      Term.(const run_bench_matrix $ manifest $ out_dir $ workers $ dry_run)
  in
  let rollup_cmd =
    let dir =
      Arg.(required & pos 0 (some string) None
          & info [] ~docv:"DIR"
              ~doc:"Results directory produced by $(b,bench matrix).")
    in
    let out =
      Arg.(value & opt (some string) None
          & info [ "out"; "o" ] ~docv:"ROLLUP.json"
              ~doc:"Rollup output path (default: DIR/rollup.json).")
    in
    Cmd.v
      (Cmd.info "rollup"
         ~doc:
           "Aggregate a matrix results directory into one fleet report \
            (exit 0 complete, 1 missing cells, 2 unreadable directory)")
      Term.(const run_bench_rollup $ dir $ out)
  in
  Cmd.group
    (Cmd.info "bench" ~doc:"Benchmark report tooling")
    [ diff_cmd; matrix_cmd; rollup_cmd ]

let obs_cmd =
  let out_arg =
    Arg.(value & opt (some string) None
        & info [ "out"; "o" ] ~docv:"OUT"
            ~doc:"Write to $(docv) instead of stdout.")
  in
  let run_id_arg =
    Arg.(value & opt (some string) None
        & info [ "run-id" ] ~docv:"RID"
            ~doc:"Only records carrying correlation id $(docv).")
  in
  let export_cmd =
    let inputs =
      Arg.(non_empty & pos_all string []
          & info [] ~docv:"PATH"
              ~doc:
                "A metrics.reg registry file, or a $(b,bench matrix) \
                 results directory whose cells' registries are merged.")
    in
    (* --prometheus is the only format today; the flag is required so
       adding a second format later is not a breaking change. *)
    let prometheus =
      Arg.(value & flag
          & info [ "prometheus" ]
              ~doc:"Render the Prometheus text exposition format.")
    in
    let run prometheus inputs out =
      if not prometheus then begin
        prerr_endline "obs export: pass --prometheus (the only format)";
        2
      end
      else run_obs_export inputs out
    in
    Cmd.v
      (Cmd.info "export"
         ~doc:
           "Merge serialized histogram registries and render them as \
            Prometheus text exposition (exit 0, 2 unreadable input)")
      Term.(const run $ prometheus $ inputs $ out_arg)
  in
  let flamegraph_cmd =
    let trace =
      Arg.(required & pos 0 (some file) None
          & info [] ~docv:"TRACE.json"
              ~doc:"Chrome trace file written by --trace or $(b,PQC_TRACE).")
    in
    let mode =
      let mode_conv =
        Arg.conv
          ( (function
             | "time" -> Ok `Time
             | "count" -> Ok `Count
             | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))),
            fun fmt m ->
              Format.pp_print_string fmt
                (match m with `Time -> "time" | `Count -> "count") )
      in
      Arg.(value & opt mode_conv `Time
          & info [ "mode" ] ~docv:"time|count"
              ~doc:
                "Weighting: $(b,time) (self microseconds) or $(b,count) \
                 (1 per span — bit-stable across runs).")
    in
    Cmd.v
      (Cmd.info "flamegraph"
         ~doc:
           "Convert a Chrome trace to folded-stack flamegraph lines \
            (exit 0, 2 unreadable input)")
      Term.(const run_obs_flamegraph $ trace $ mode $ out_arg)
  in
  let tail_cmd =
    let path =
      Arg.(required & pos 0 (some file) None
          & info [] ~docv:"RUN.jsonl" ~doc:"Run log to read.")
    in
    let last =
      Arg.(value & opt int 10
          & info [ "n" ] ~docv:"N" ~doc:"Show the last $(docv) records.")
    in
    Cmd.v
      (Cmd.info "tail"
         ~doc:
           "Show the last records of a run log, optionally filtered by \
            run id (exit 0, 2 unreadable input)")
      Term.(const run_obs_tail $ path $ run_id_arg $ last)
  in
  let join_cmd =
    let paths =
      Arg.(non_empty & pos_all file []
          & info [] ~docv:"RUN.jsonl"
              ~doc:"Run logs to join (repeatable).")
    in
    Cmd.v
      (Cmd.info "join"
         ~doc:
           "Group records from several run logs by correlation id; with \
            --run-id, print that run's records in sequence order (exit \
            0, 1 no matching records, 2 unreadable input)")
      Term.(const run_obs_join $ paths $ run_id_arg)
  in
  Cmd.group
    (Cmd.info "obs"
       ~doc:"Observability tooling: Prometheus export, flamegraphs, run-log \
             provenance")
    [ export_cmd; flamegraph_cmd; tail_cmd; join_cmd ]

let slices_cmd =
  let benchmark =
    Arg.(value & opt string "h2" & info [ "benchmark"; "b" ] ~doc:"Benchmark circuit.")
  in
  Cmd.v (Cmd.info "slices" ~doc:"Show the strict/flexible slicing of a benchmark")
    Term.(const run_slices $ benchmark)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "partialc" ~version:"1.0.0"
      ~doc:"Partial compilation of variational quantum algorithms"
  in
  exit (Cmd.eval' (Cmd.group ~default info [ compile_cmd; tables_cmd; vqe_cmd; qaoa_cmd; grape_cmd; export_cmd; qasm_cmd; slices_cmd; lint_cmd; analyze_cmd; bench_cmd; obs_cmd ]))
